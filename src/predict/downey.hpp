// Downey's run-time predictor (paper §2.2).
//
// Jobs are categorized by submission queue (the whole workload forms one
// category when the trace has no queues).  Within a category the cumulative
// distribution of observed run times is fitted as F(t) = b0 + b1 ln t, and a
// job that has run for `a` seconds is predicted to finish at the
// conditional median or conditional average lifetime of that model.
//
// For queued jobs (a = 0) both formulas degenerate, so the age is clamped
// to the model's t_min = e^{-b0/b1} — the run time at which the fitted CDF
// reaches zero — which turns both estimators into their *unconditional*
// counterparts (e.g. the unconditional median e^{(0.5-b0)/b1}).
//
// Refitting after every completion would be O(n log n) per job, so the fit
// is cached per category and renewed lazily once the category has grown 10%
// past the last fit.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "sched/estimator.hpp"
#include "stats/loglinear.hpp"
#include "stats/summary.hpp"
#include "workload/job.hpp"

namespace rtp {

enum class DowneyVariant { ConditionalAverage, ConditionalMedian };

class DowneyPredictor final : public RuntimeEstimator {
 public:
  explicit DowneyPredictor(DowneyVariant variant) : variant_(variant) {}

  Seconds estimate(const Job& job, Seconds age) override;
  /// nullopt when neither the queue category nor the global model can fit.
  std::optional<Seconds> try_estimate(const Job& job, Seconds age) override;
  void job_completed(const Job& job, Seconds completion_time) override;
  std::string name() const override {
    return variant_ == DowneyVariant::ConditionalAverage ? "downey-avg" : "downey-med";
  }

  DowneyVariant variant() const { return variant_; }

 private:
  struct CategoryModel {
    std::vector<double> runtimes;
    LogLinearCdf model;
    std::size_t fitted_at = 0;  // runtimes.size() when last fitted

    /// Refit when the sample grew enough; returns model validity.
    bool ensure_fit();
  };
  static constexpr std::size_t kMinPoints = 8;

  /// Prediction from one category model; false when the model is unusable.
  bool predict_from(CategoryModel& cat, Seconds age, double& out) const;

  DowneyVariant variant_;
  std::unordered_map<std::string, CategoryModel> queues_;
  CategoryModel global_;
  RunningStats observed_;
};

}  // namespace rtp
