#include "predict/downey.hpp"

#include <algorithm>
#include <cmath>

namespace rtp {

bool DowneyPredictor::CategoryModel::ensure_fit() {
  if (runtimes.size() < kMinPoints) return false;
  const bool stale =
      fitted_at == 0 || runtimes.size() >= fitted_at + std::max<std::size_t>(8, fitted_at / 10);
  if (stale) {
    model = LogLinearCdf::fit(runtimes);
    fitted_at = runtimes.size();
  }
  return model.valid();
}

bool DowneyPredictor::predict_from(CategoryModel& cat, Seconds age, double& out) const {
  if (!cat.ensure_fit()) return false;
  const LogLinearCdf& m = cat.model;
  // Clamp to the model's support: below t_min both conditional estimators
  // reduce to their unconditional forms; beyond t_max the job has outlived
  // the model and the best available statement is "about to finish".
  const double t_min = std::exp(-m.beta0() / m.beta1());
  const double a = std::max<double>({age, t_min, 1.0});
  out = variant_ == DowneyVariant::ConditionalAverage ? m.conditional_average(a)
                                                      : m.conditional_median(a);
  return std::isfinite(out) && out > 0.0;
}

Seconds DowneyPredictor::estimate(const Job& job, Seconds age) {
  double value = 0.0;
  bool ok = false;
  if (!job.queue.empty()) {
    if (auto it = queues_.find(job.queue); it != queues_.end())
      ok = predict_from(it->second, age, value);
  }
  if (!ok) ok = predict_from(global_, age, value);
  if (!ok)
    value = job.has_max_runtime() ? job.max_runtime
                                  : (observed_.count() > 0 ? observed_.mean() : hours(1));
  return std::max({value, age + 1.0, 1.0});
}

std::optional<Seconds> DowneyPredictor::try_estimate(const Job& job, Seconds age) {
  double value = 0.0;
  bool ok = false;
  if (!job.queue.empty()) {
    if (auto it = queues_.find(job.queue); it != queues_.end())
      ok = predict_from(it->second, age, value);
  }
  if (!ok) ok = predict_from(global_, age, value);
  if (!ok) return std::nullopt;
  return std::max({value, age + 1.0, 1.0});
}

void DowneyPredictor::job_completed(const Job& job, Seconds completion_time) {
  (void)completion_time;
  const double runtime = std::max(1.0, job.runtime);  // log model needs > 0
  observed_.add(runtime);
  if (!job.queue.empty()) queues_[job.queue].runtimes.push_back(runtime);
  global_.runtimes.push_back(runtime);
}

}  // namespace rtp
