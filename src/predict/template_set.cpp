#include "predict/template_set.hpp"

#include "core/error.hpp"

namespace rtp {

std::string to_string(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::Mean: return "mean";
    case EstimatorKind::LinearRegression: return "linreg";
    case EstimatorKind::InverseRegression: return "invreg";
    case EstimatorKind::LogRegression: return "logreg";
  }
  fail("unknown estimator kind");
}

bool Template::feasible_for(FieldMask available, bool trace_has_max_runtimes) const {
  if (!characteristics.subset_of(available)) return false;
  if (use_nodes && !available.has(Characteristic::Nodes)) return false;
  if (relative && !trace_has_max_runtimes) return false;
  return true;
}

std::string Template::key_for(const Job& job) const {
  std::string key;
  for (Characteristic c : all_characteristics()) {
    if (c == Characteristic::Nodes || !characteristics.has(c)) continue;
    key += characteristic_abbr(c);
    key += '=';
    key += job.field(c);
    key += '\x1f';
  }
  if (use_nodes) {
    RTP_ASSERT(node_range_size >= 1);
    key += "n=";
    key += std::to_string((job.nodes - 1) / node_range_size);
  }
  return key;
}

std::string Template::describe() const {
  std::string out = "(" + characteristics.to_string();
  if (use_nodes) {
    if (!characteristics.empty()) out += ',';
    out += "n=" + std::to_string(node_range_size);
  }
  out += ") " + to_string(estimator);
  if (relative) out += " rel";
  if (max_history > 0) out += " hist=" + std::to_string(max_history);
  if (condition_on_age) out += " age";
  return out;
}

std::string TemplateSet::describe() const {
  std::string out;
  for (const Template& t : templates) {
    if (!out.empty()) out += "; ";
    out += t.describe();
  }
  return out.empty() ? "<empty>" : out;
}

TemplateSet default_template_set(FieldMask available, bool trace_has_max_runtimes) {
  TemplateSet set;
  auto add = [&](Template t) {
    if (t.feasible_for(available, trace_has_max_runtimes)) set.templates.push_back(t);
  };

  const bool has_user = available.has(Characteristic::User);
  const bool has_exe = available.has(Characteristic::Executable);
  const bool has_args = available.has(Characteristic::Arguments);
  const bool has_queue = available.has(Characteristic::Queue);
  const bool has_script = available.has(Characteristic::Script);

  // Most specific first (selection is by smallest confidence interval, so
  // order is cosmetic; specific templates simply tend to win).
  if (has_user && has_exe && has_args) {
    Template t;
    t.characteristics.set(Characteristic::User)
        .set(Characteristic::Executable)
        .set(Characteristic::Arguments);
    t.use_nodes = true;
    t.node_range_size = 2;
    t.max_history = 32;
    add(t);
    if (trace_has_max_runtimes) {
      t.relative = true;
      add(t);
    }
  }
  if (has_user && has_exe) {
    Template t;
    t.characteristics.set(Characteristic::User).set(Characteristic::Executable);
    t.use_nodes = true;
    t.node_range_size = 4;
    t.max_history = 64;
    add(t);
    t.condition_on_age = true;  // conditional estimates for running jobs
    add(t);
    t.condition_on_age = false;
    t.use_nodes = false;
    add(t);
  }
  if (has_user && has_script) {
    Template t;
    t.characteristics.set(Characteristic::User).set(Characteristic::Script);
    t.use_nodes = true;
    t.node_range_size = 4;
    t.max_history = 64;
    add(t);
  }
  if (has_queue && has_user) {
    Template t;
    t.characteristics.set(Characteristic::Queue).set(Characteristic::User);
    t.max_history = 128;
    add(t);
  }
  if (has_user) {
    Template t;
    t.characteristics.set(Characteristic::User);
    t.use_nodes = true;
    t.node_range_size = 8;
    t.max_history = 128;
    add(t);
    if (trace_has_max_runtimes) {
      t.relative = true;
      add(t);
    }
  }
  if (has_queue) {
    Template t;
    t.characteristics.set(Characteristic::Queue);
    t.max_history = 256;
    add(t);
    t.condition_on_age = true;
    add(t);
  }
  {
    // Global fallbacks so some category always accumulates data; the
    // age-conditioned one keeps estimates of long-running jobs sensible.
    Template t;
    t.use_nodes = true;
    t.node_range_size = 16;
    t.max_history = 512;
    add(t);
    Template g;
    g.max_history = 1024;
    add(g);
    g.condition_on_age = true;
    add(g);
  }
  return set;
}

}  // namespace rtp
