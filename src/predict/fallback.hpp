// Graceful degradation for run-time predictors.
//
// History-based predictors (STF, Gibbons, Downey) silently fall back to a
// degenerate default when a job matches no populated category — during
// ramp-up, after a template change, or for never-before-seen users.  This
// decorator makes the degradation explicit and layered: each estimate is
// served by the first tier that can actually predict,
//
//   primary (e.g. STF)  ->  secondary (e.g. Gibbons)  ->  category mean
//     ->  workload mean  ->  static default,
//
// with per-tier counters so experiments can report how often prediction
// quality degraded instead of hiding it inside a predictor.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <unordered_map>

#include "sched/estimator.hpp"
#include "stats/summary.hpp"

namespace rtp {

enum class FallbackTier : int {
  Primary = 0,       ///< the wrapped predictor had real history
  Secondary,         ///< the backup predictor had real history
  CategoryMean,      ///< mean of completions sharing the job's category
  WorkloadMean,      ///< mean of all completions seen so far
  Default,           ///< nothing observed yet: max runtime or a constant
};

inline constexpr std::size_t kFallbackTierCount = 5;

const char* to_string(FallbackTier tier);

/// How many estimates each tier served.
struct FallbackCounters {
  std::array<std::size_t, kFallbackTierCount> fired{};

  std::size_t at(FallbackTier tier) const { return fired[static_cast<int>(tier)]; }
  std::size_t total() const;
};

struct FallbackOptions {
  /// Category-mean tier needs this many completions in the category.
  std::size_t min_category_points = 3;
  /// Last-resort estimate when nothing has completed and the job has no
  /// max run time.
  Seconds default_estimate = hours(1);
};

class FallbackEstimator final : public RuntimeEstimator {
 public:
  /// `secondary` may be null (chain skips straight to the mean tiers).
  explicit FallbackEstimator(std::unique_ptr<RuntimeEstimator> primary,
                             std::unique_ptr<RuntimeEstimator> secondary = nullptr,
                             FallbackOptions options = {});

  Seconds estimate(const Job& job, Seconds age) override;
  void job_completed(const Job& job, Seconds completion_time) override;
  std::string name() const override;

  const FallbackCounters& counters() const { return counters_; }
  /// Tier that served the most recent estimate.
  FallbackTier last_tier() const { return last_tier_; }

  RuntimeEstimator& primary() { return *primary_; }
  RuntimeEstimator* secondary() { return secondary_.get(); }

 private:
  /// Category key: queue, else executable, else user; empty = uncategorized.
  static std::string category_key(const Job& job);

  Seconds serve(FallbackTier tier, Seconds value, Seconds age);

  std::unique_ptr<RuntimeEstimator> primary_;
  std::unique_ptr<RuntimeEstimator> secondary_;
  FallbackOptions options_;
  std::unordered_map<std::string, RunningStats> category_means_;
  RunningStats workload_mean_;
  FallbackCounters counters_;
  FallbackTier last_tier_ = FallbackTier::Default;
};

}  // namespace rtp
