// Gibbons's run-time predictor (paper §2.2, Table 3).
//
// A fixed hierarchy of six template/predictor pairs, tried in order until
// one can produce a valid prediction:
//
//   1. (u,e,n,rtime)  mean          4. (e)    weighted linear regression
//   2. (u,e)          weighted LR   5. (n,rtime) mean
//   3. (e,n,rtime)    mean          6. ()     weighted linear regression
//
// Node ranges are exponential (1, 2-3, 4-7, 8-15, ...), unlike our
// parameterized equal ranges.  The "rtime" condition restricts a mean to
// data points whose run time is at least the job's current age.  The linear
// regressions at levels 2/4/6 are *weighted*: over the (mean nodes, mean
// run time) of each populated subcategory, weighted by the inverse variance
// of that subcategory's run times.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/estimator.hpp"
#include "stats/summary.hpp"
#include "workload/job.hpp"

namespace rtp {

class GibbonsPredictor final : public RuntimeEstimator {
 public:
  Seconds estimate(const Job& job, Seconds age) override;
  /// nullopt when all six levels are empty (level-0 ramp-up fallback).
  std::optional<Seconds> try_estimate(const Job& job, Seconds age) override;
  void job_completed(const Job& job, Seconds completion_time) override;
  std::string name() const override { return "gibbons"; }

  /// Which of the six levels produced the last estimate (1-6, 0=fallback).
  int last_level() const { return last_level_; }

  /// Exponential node-range index: floor(log2(n)).
  static int range_index(int nodes);

 private:
  struct SubCat {
    std::vector<double> runtimes;  // for rtime-conditioned means
    RunningStats runtime_stats;
    RunningStats node_stats;
  };
  // Subcategories keyed by exponential node-range index.
  using RangeMap = std::map<int, SubCat>;

  /// Mean of runtimes >= age in the subcategory; invalid if none.
  static bool conditioned_mean(const SubCat& cat, Seconds age, double& out);

  /// Weighted LR over the populated subcategories; invalid with < 2.
  static bool weighted_regression(const RangeMap& ranges, double nodes, double& out);

  std::unordered_map<std::string, RangeMap> ue_;  // key "user\x1fexe"
  std::unordered_map<std::string, RangeMap> e_;   // key "exe"
  RangeMap root_;

  RunningStats observed_;  // global fallback
  int last_level_ = 0;
};

}  // namespace rtp
