// Error-accounting decorator around any run-time estimator.
//
// Records the prediction made for each job at submission time (its first
// age-zero estimate) and, when the job completes, accumulates the absolute
// error — the paper's run-time prediction error metric (reported as a mean
// in minutes and as a percentage of the mean run time).
#pragma once

#include <string>
#include <unordered_map>

#include "sched/estimator.hpp"
#include "stats/summary.hpp"

namespace rtp {

class RecordingEstimator final : public RuntimeEstimator {
 public:
  /// Does not own `inner`; it must outlive this object.
  explicit RecordingEstimator(RuntimeEstimator& inner) : inner_(inner) {}

  Seconds estimate(const Job& job, Seconds age) override;
  void job_completed(const Job& job, Seconds completion_time) override;
  std::string name() const override { return inner_.name(); }

  /// Absolute run-time prediction error (seconds) over completed jobs.
  const RunningStats& error_stats() const { return error_; }

  /// Actual run times (seconds) of completed jobs, for percent-of-mean.
  const RunningStats& runtime_stats() const { return runtimes_; }

  /// Mean |error| as a percentage of mean run time; 0 when no data.
  double error_percent_of_mean_runtime() const;

 private:
  RuntimeEstimator& inner_;
  std::unordered_map<JobId, Seconds> first_prediction_;
  RunningStats error_;
  RunningStats runtimes_;
};

}  // namespace rtp
