#include "predict/simple.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace rtp {

Seconds ActualRuntimePredictor::estimate(const Job& job, Seconds age) {
  return std::max(job.runtime, age);
}

MaxRuntimePredictor::MaxRuntimePredictor(const Workload& workload) {
  for (const Job& job : workload.jobs()) {
    const Seconds limit = job.has_max_runtime() ? job.max_runtime : job.runtime;
    global_max_ = std::max(global_max_, limit);
    if (!job.queue.empty()) {
      auto [it, inserted] = queue_max_.emplace(job.queue, limit);
      if (!inserted) it->second = std::max(it->second, limit);
    }
  }
  if (global_max_ <= 0.0) global_max_ = hours(1);  // empty workload guard
}

Seconds MaxRuntimePredictor::estimate(const Job& job, Seconds age) {
  Seconds value;
  if (job.has_max_runtime()) {
    value = job.max_runtime;
  } else if (!job.queue.empty()) {
    auto it = queue_max_.find(job.queue);
    value = it != queue_max_.end() ? it->second : global_max_;
  } else {
    value = global_max_;
  }
  return std::max(value, age);
}

Seconds MaxRuntimePredictor::queue_limit(const std::string& queue) const {
  auto it = queue_max_.find(queue);
  return it != queue_max_.end() ? it->second : kNoTime;
}

Seconds ConstantPredictor::estimate(const Job& job, Seconds age) {
  (void)job;
  return std::max(value_, age);
}

}  // namespace rtp
