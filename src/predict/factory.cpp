#include "predict/factory.hpp"

#include "core/error.hpp"
#include "core/strings.hpp"
#include "predict/downey.hpp"
#include "predict/fallback.hpp"
#include "predict/gibbons.hpp"
#include "predict/simple.hpp"
#include "predict/stf.hpp"
#include "workload/workload.hpp"

namespace rtp {

std::string to_string(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::Actual: return "actual";
    case PredictorKind::MaxRuntime: return "max-runtime";
    case PredictorKind::Stf: return "stf";
    case PredictorKind::Gibbons: return "gibbons";
    case PredictorKind::DowneyAverage: return "downey-avg";
    case PredictorKind::DowneyMedian: return "downey-med";
  }
  fail("unknown predictor kind");
}

PredictorKind predictor_kind_from_string(const std::string& text) {
  const std::string t = to_lower(text);
  if (t == "actual" || t == "oracle") return PredictorKind::Actual;
  if (t == "max" || t == "max-runtime" || t == "maxrt") return PredictorKind::MaxRuntime;
  if (t == "stf" || t == "ours") return PredictorKind::Stf;
  if (t == "gibbons") return PredictorKind::Gibbons;
  if (t == "downey-avg" || t == "downey-average") return PredictorKind::DowneyAverage;
  if (t == "downey-med" || t == "downey-median") return PredictorKind::DowneyMedian;
  fail("unknown predictor '" + text +
       "' (expected actual|max|stf|gibbons|downey-avg|downey-med)");
}

std::unique_ptr<RuntimeEstimator> make_runtime_estimator(
    PredictorKind kind, const Workload& workload,
    const std::optional<TemplateSet>& templates) {
  const bool has_max = compute_stats(workload).max_runtime_coverage > 0.0;
  switch (kind) {
    case PredictorKind::Actual: return std::make_unique<ActualRuntimePredictor>();
    case PredictorKind::MaxRuntime: return std::make_unique<MaxRuntimePredictor>(workload);
    case PredictorKind::Stf: {
      TemplateSet set =
          templates ? *templates : default_template_set(workload.fields(), has_max);
      return std::make_unique<StfPredictor>(std::move(set));
    }
    case PredictorKind::Gibbons: return std::make_unique<GibbonsPredictor>();
    case PredictorKind::DowneyAverage:
      return std::make_unique<DowneyPredictor>(DowneyVariant::ConditionalAverage);
    case PredictorKind::DowneyMedian:
      return std::make_unique<DowneyPredictor>(DowneyVariant::ConditionalMedian);
  }
  fail("unknown predictor kind");
}

std::unique_ptr<FallbackEstimator> make_fallback_estimator(
    PredictorKind kind, const Workload& workload,
    const std::optional<TemplateSet>& templates) {
  auto primary = make_runtime_estimator(kind, workload, templates);
  // STF degrades through Gibbons first: a different similarity structure
  // that often still has data when a fine-grained STF category is empty.
  std::unique_ptr<RuntimeEstimator> secondary;
  if (kind == PredictorKind::Stf) secondary = std::make_unique<GibbonsPredictor>();
  return std::make_unique<FallbackEstimator>(std::move(primary), std::move(secondary));
}

}  // namespace rtp
