// The Smith–Taylor–Foster run-time predictor (the paper's contribution).
//
// Holds a set of similarity templates.  When a job completes, its run time
// is inserted into one category per template (paper step 3).  To predict, a
// category estimate is computed for every template whose category has
// enough data, and the estimate with the smallest confidence interval wins
// (paper step 2).  During the initial ramp-up — and for jobs matching no
// populated category — the predictor falls back to the user-supplied
// maximum run time when the trace has one, else the global mean of observed
// run times, else one hour.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "predict/category.hpp"
#include "predict/template_set.hpp"
#include "sched/estimator.hpp"
#include "stats/summary.hpp"

namespace rtp {

struct StfOptions {
  /// Confidence level for interval comparison: (1 - alpha).
  double alpha = 0.10;
  /// Clamp predictions to the job's max run time when present.
  bool clamp_to_max_runtime = false;
  /// Fallback when no category can predict and the job has no maximum.
  Seconds default_estimate = hours(1);
  /// Memoize category keys per (template, job id).  Only safe when every
  /// job this predictor will see has a unique stable id and immutable
  /// fields — true for jobs owned by one Workload.  The GA's per-genome
  /// evaluation and the experiment harness enable it; jobs without an id
  /// (kInvalidJob) always bypass the cache.
  bool memoize_keys = false;
};

/// Detail returned by predict_detail for diagnostics, tests and examples.
struct StfPrediction {
  Seconds estimate = 0.0;
  Seconds ci_halfwidth = 0.0;
  int winning_template = -1;  // index into the template set; -1 = fallback
  std::size_t points_used = 0;
};

class StfPredictor final : public RuntimeEstimator {
 public:
  StfPredictor(TemplateSet templates, StfOptions options = {});

  Seconds estimate(const Job& job, Seconds age) override;
  /// nullopt when no template category can predict (ramp-up fallback would
  /// have fired); lets FallbackEstimator degrade to the next tier.
  std::optional<Seconds> try_estimate(const Job& job, Seconds age) override;
  void job_completed(const Job& job, Seconds completion_time) override;
  std::string name() const override { return "stf"; }

  /// Initialize the category database from a training set — the paper's
  /// suggested fix for the ramp-up period ("This deficiency could be
  /// corrected by using a training set to initialize C").  Equivalent to
  /// observing each job's completion before the evaluation starts.
  void bootstrap(std::span<const Job> training_jobs);

  /// Full detail (winning template, interval) for one prediction.
  StfPrediction predict_detail(const Job& job, Seconds age) const;

  const TemplateSet& templates() const { return templates_; }

  /// Total stored categories across all templates (diagnostics).
  std::size_t category_count() const;

 private:
  /// Category key of `job` under template `i`.  With memoize_keys set,
  /// built once per (template, job id): every job is looked up at least
  /// twice (predict at submission, insert at completion) and repeatedly by
  /// forward simulations, so this amortizes the dominant lookup cost.
  const std::string& category_key(std::size_t i, const Job& job) const;

  TemplateSet templates_;
  StfOptions options_;
  std::vector<std::unordered_map<std::string, Category>> stores_;  // per template
  mutable std::vector<std::unordered_map<JobId, std::string>> key_cache_;
  mutable std::string scratch_key_;  // un-memoized path
  RunningStats observed_;  // all completed run times (fallback)
};

}  // namespace rtp
