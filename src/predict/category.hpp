// Category: the history store behind one (template, key) pair.
//
// Holds a bounded deque of data points (run time or run-time/limit ratio,
// plus the node count for the regression estimators) with incremental
// moment accumulators so the common case — an unconditioned mean — is O(1)
// per prediction.  Conditioned and regression estimates scan the stored
// points, which the max-history bound keeps small.
#pragma once

#include <deque>

#include "core/time.hpp"
#include "predict/template_set.hpp"
#include "workload/job.hpp"

namespace rtp {

/// One completed job as seen by a category.
struct DataPoint {
  double value = 0.0;    // run time, or run time / max limit for relative
  double runtime = 0.0;  // actual run time (age conditioning)
  double nodes = 1.0;    // requested nodes (regression x)
};

/// A category estimate: point prediction plus its confidence interval.
struct CategoryEstimate {
  bool valid = false;
  double value = 0.0;          // predicted value (same units as DataPoint::value)
  double ci_halfwidth = 0.0;   // (1-alpha) prediction-interval half-width
  std::size_t count = 0;       // points used
};

class Category {
 public:
  /// Append a point, evicting the oldest when `max_history` (if non-zero)
  /// is reached — paper step 3(b).
  void insert(const DataPoint& point, std::size_t max_history);

  std::size_t size() const { return points_.size(); }

  /// Estimate for a job requesting `nodes` nodes that has been running for
  /// `min_runtime` seconds (0 for queued jobs).  Points with run time below
  /// `min_runtime` are excluded when `condition_on_age` is set.
  CategoryEstimate estimate(EstimatorKind kind, double nodes, Seconds min_runtime,
                            bool condition_on_age, double alpha = 0.10) const;

 private:
  CategoryEstimate mean_fast(double alpha) const;
  CategoryEstimate mean_scan(Seconds min_runtime, double alpha) const;
  CategoryEstimate regression_scan(EstimatorKind kind, double nodes, Seconds min_runtime,
                                   bool condition_on_age, double alpha) const;

  std::deque<DataPoint> points_;
  // Welford accumulators of `value` for the O(1) unconditioned mean.  The
  // naive sum/sum-of-squares form cancels catastrophically for large run
  // times (1e5 s) under long sliding windows; mean/M2 stays accurate.
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
};

}  // namespace rtp
