#include "predict/stf.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace rtp {

StfPredictor::StfPredictor(TemplateSet templates, StfOptions options)
    : templates_(std::move(templates)), options_(options) {
  RTP_CHECK(!templates_.templates.empty(), "StfPredictor needs at least one template");
  for (const Template& t : templates_.templates) {
    RTP_CHECK(!t.use_nodes || t.node_range_size >= 1,
              "template node range size must be >= 1");
    (void)t;
  }
  stores_.resize(templates_.templates.size());
  key_cache_.resize(templates_.templates.size());
}

const std::string& StfPredictor::category_key(std::size_t i, const Job& job) const {
  if (!options_.memoize_keys || job.id == kInvalidJob) {
    scratch_key_ = templates_.templates[i].key_for(job);
    return scratch_key_;
  }
  auto& cache = key_cache_[i];
  auto it = cache.find(job.id);
  if (it == cache.end())
    it = cache.emplace(job.id, templates_.templates[i].key_for(job)).first;
  return it->second;
}

StfPrediction StfPredictor::predict_detail(const Job& job, Seconds age) const {
  StfPrediction best;
  bool found = false;

  for (std::size_t i = 0; i < templates_.templates.size(); ++i) {
    const Template& tmpl = templates_.templates[i];
    if (tmpl.relative && !job.has_max_runtime()) continue;
    const auto& store = stores_[i];
    auto it = store.find(category_key(i, job));
    if (it == store.end()) continue;

    // Relative templates store ratios; conditioning must therefore compare
    // against the *ratio* the current age implies.
    const Seconds min_runtime =
        tmpl.relative ? age / std::max<Seconds>(1.0, job.max_runtime) : age;
    CategoryEstimate est = it->second.estimate(tmpl.estimator, job.nodes, min_runtime,
                                               tmpl.condition_on_age, options_.alpha);
    if (!est.valid) continue;

    double value = est.value;
    double halfwidth = est.ci_halfwidth;
    if (tmpl.relative) {
      value *= job.max_runtime;
      halfwidth *= job.max_runtime;
    }
    // A job that has run for `age` cannot finish below it: an estimate
    // under the age is known-wrong, so never let it win the CI contest.
    if (age > 0.0 && value < age) continue;
    if (!found || halfwidth < best.ci_halfwidth) {
      found = true;
      best.estimate = value;
      best.ci_halfwidth = halfwidth;
      best.winning_template = static_cast<int>(i);
      best.points_used = est.count;
    }
  }

  if (!found) {
    // Ramp-up fallback (paper notes the deficiency; a scheduler still needs
    // a number).
    best.estimate = job.has_max_runtime()
                        ? job.max_runtime
                        : (observed_.count() > 0 ? observed_.mean() : options_.default_estimate);
    best.ci_halfwidth = best.estimate;  // maximally uncertain
    best.winning_template = -1;
    best.points_used = 0;
  }

  // A prediction can never undercut what the job has already run, and a
  // non-positive run time is meaningless.
  best.estimate = std::max({best.estimate, age + 1.0, 1.0});
  if (options_.clamp_to_max_runtime && job.has_max_runtime())
    best.estimate = std::min(best.estimate, std::max(job.max_runtime, age + 1.0));
  return best;
}

Seconds StfPredictor::estimate(const Job& job, Seconds age) {
  return predict_detail(job, age).estimate;
}

std::optional<Seconds> StfPredictor::try_estimate(const Job& job, Seconds age) {
  const StfPrediction detail = predict_detail(job, age);
  if (detail.winning_template < 0) return std::nullopt;
  return detail.estimate;
}

void StfPredictor::job_completed(const Job& job, Seconds completion_time) {
  (void)completion_time;
  observed_.add(job.runtime);
  for (std::size_t i = 0; i < templates_.templates.size(); ++i) {
    const Template& tmpl = templates_.templates[i];
    if (tmpl.relative && !job.has_max_runtime()) continue;
    DataPoint point;
    point.runtime = job.runtime;
    point.nodes = job.nodes;
    point.value =
        tmpl.relative ? job.runtime / std::max<Seconds>(1.0, job.max_runtime) : job.runtime;
    stores_[i][category_key(i, job)].insert(point, tmpl.max_history);
  }
}

void StfPredictor::bootstrap(std::span<const Job> training_jobs) {
  for (const Job& job : training_jobs) job_completed(job, job.submit + job.runtime);
}

std::size_t StfPredictor::category_count() const {
  std::size_t total = 0;
  for (const auto& store : stores_) total += store.size();
  return total;
}

}  // namespace rtp
