#include "predict/category.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "stats/ci.hpp"
#include "stats/regression.hpp"

namespace rtp {
namespace {

constexpr std::size_t kMinMeanPoints = 2;        // variance (and CI) defined
constexpr std::size_t kMinRegressionPoints = 3;  // residual stddev defined

}  // namespace

void Category::insert(const DataPoint& point, std::size_t max_history) {
  if (max_history > 0 && points_.size() >= max_history) {
    // Reverse Welford update for the evicted point.
    const double x = points_.front().value;
    const std::size_t n = points_.size();
    if (n == 1) {
      mean_ = 0.0;
      m2_ = 0.0;
    } else {
      const double old_mean = mean_;
      mean_ = (static_cast<double>(n) * mean_ - x) / static_cast<double>(n - 1);
      m2_ -= (x - old_mean) * (x - mean_);
    }
    points_.pop_front();
  }
  points_.push_back(point);
  const double delta = point.value - mean_;
  mean_ += delta / static_cast<double>(points_.size());
  m2_ += delta * (point.value - mean_);
}

CategoryEstimate Category::estimate(EstimatorKind kind, double nodes, Seconds min_runtime,
                                    bool condition_on_age, double alpha) const {
  if (kind == EstimatorKind::Mean) {
    if (condition_on_age && min_runtime > 0.0) return mean_scan(min_runtime, alpha);
    return mean_fast(alpha);
  }
  return regression_scan(kind, nodes, min_runtime, condition_on_age, alpha);
}

CategoryEstimate Category::mean_fast(double alpha) const {
  CategoryEstimate out;
  const std::size_t n = points_.size();
  if (n < kMinMeanPoints) return out;
  // The eviction updates can leave M2 a hair below zero; that residue is
  // genuine rounding noise, unlike the cancellation the old sum-of-squares
  // form hid behind the same clamp.
  const double var = std::max(m2_, 0.0) / static_cast<double>(n - 1);
  out.valid = true;
  out.value = mean_;
  out.ci_halfwidth = prediction_interval_halfwidth(n, std::sqrt(var), alpha);
  out.count = n;
  return out;
}

CategoryEstimate Category::mean_scan(Seconds min_runtime, double alpha) const {
  CategoryEstimate out;
  // Centered two-pass: mean first, then squared deviations, so large values
  // with small spread do not cancel.
  std::size_t n = 0;
  double sum = 0.0;
  for (const DataPoint& p : points_) {
    if (p.runtime < min_runtime) continue;
    ++n;
    sum += p.value;
  }
  if (n < kMinMeanPoints) return out;
  const double mean = sum / static_cast<double>(n);
  double sq_dev = 0.0;
  for (const DataPoint& p : points_) {
    if (p.runtime < min_runtime) continue;
    const double d = p.value - mean;
    sq_dev += d * d;
  }
  const double var = sq_dev / static_cast<double>(n - 1);
  out.valid = true;
  out.value = mean;
  out.ci_halfwidth = prediction_interval_halfwidth(n, std::sqrt(var), alpha);
  out.count = n;
  return out;
}

CategoryEstimate Category::regression_scan(EstimatorKind kind, double nodes,
                                           Seconds min_runtime, bool condition_on_age,
                                           double alpha) const {
  CategoryEstimate out;
  RegressionKind rk = RegressionKind::Linear;
  switch (kind) {
    case EstimatorKind::LinearRegression: rk = RegressionKind::Linear; break;
    case EstimatorKind::InverseRegression: rk = RegressionKind::Inverse; break;
    case EstimatorKind::LogRegression: rk = RegressionKind::Logarithmic; break;
    case EstimatorKind::Mean: RTP_ASSERT(false);
  }
  TransformedRegression reg(rk);
  for (const DataPoint& p : points_) {
    if (condition_on_age && p.runtime < min_runtime) continue;
    reg.add(p.nodes, p.value);
  }
  if (reg.count() < kMinRegressionPoints || !reg.valid()) return out;
  out.valid = true;
  out.value = reg.predict(nodes);
  out.ci_halfwidth = reg.prediction_halfwidth(nodes, alpha);
  out.count = reg.count();
  return out;
}

}  // namespace rtp
