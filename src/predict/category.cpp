#include "predict/category.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "stats/ci.hpp"
#include "stats/regression.hpp"

namespace rtp {
namespace {

constexpr std::size_t kMinMeanPoints = 2;        // variance (and CI) defined
constexpr std::size_t kMinRegressionPoints = 3;  // residual stddev defined

}  // namespace

void Category::insert(const DataPoint& point, std::size_t max_history) {
  if (max_history > 0 && points_.size() >= max_history) {
    const DataPoint& old = points_.front();
    sum_ -= old.value;
    sum_sq_ -= old.value * old.value;
    points_.pop_front();
  }
  points_.push_back(point);
  sum_ += point.value;
  sum_sq_ += point.value * point.value;
}

CategoryEstimate Category::estimate(EstimatorKind kind, double nodes, Seconds min_runtime,
                                    bool condition_on_age, double alpha) const {
  if (kind == EstimatorKind::Mean) {
    if (condition_on_age && min_runtime > 0.0) return mean_scan(min_runtime, alpha);
    return mean_fast(alpha);
  }
  return regression_scan(kind, nodes, min_runtime, condition_on_age, alpha);
}

CategoryEstimate Category::mean_fast(double alpha) const {
  CategoryEstimate out;
  const std::size_t n = points_.size();
  if (n < kMinMeanPoints) return out;
  const double mean = sum_ / static_cast<double>(n);
  double var = (sum_sq_ - static_cast<double>(n) * mean * mean) / static_cast<double>(n - 1);
  var = std::max(var, 0.0);  // guard accumulated FP error
  out.valid = true;
  out.value = mean;
  out.ci_halfwidth = prediction_interval_halfwidth(n, std::sqrt(var), alpha);
  out.count = n;
  return out;
}

CategoryEstimate Category::mean_scan(Seconds min_runtime, double alpha) const {
  CategoryEstimate out;
  std::size_t n = 0;
  double sum = 0.0, sum_sq = 0.0;
  for (const DataPoint& p : points_) {
    if (p.runtime < min_runtime) continue;
    ++n;
    sum += p.value;
    sum_sq += p.value * p.value;
  }
  if (n < kMinMeanPoints) return out;
  const double mean = sum / static_cast<double>(n);
  double var = (sum_sq - static_cast<double>(n) * mean * mean) / static_cast<double>(n - 1);
  var = std::max(var, 0.0);
  out.valid = true;
  out.value = mean;
  out.ci_halfwidth = prediction_interval_halfwidth(n, std::sqrt(var), alpha);
  out.count = n;
  return out;
}

CategoryEstimate Category::regression_scan(EstimatorKind kind, double nodes,
                                           Seconds min_runtime, bool condition_on_age,
                                           double alpha) const {
  CategoryEstimate out;
  RegressionKind rk = RegressionKind::Linear;
  switch (kind) {
    case EstimatorKind::LinearRegression: rk = RegressionKind::Linear; break;
    case EstimatorKind::InverseRegression: rk = RegressionKind::Inverse; break;
    case EstimatorKind::LogRegression: rk = RegressionKind::Logarithmic; break;
    case EstimatorKind::Mean: RTP_ASSERT(false);
  }
  TransformedRegression reg(rk);
  for (const DataPoint& p : points_) {
    if (condition_on_age && p.runtime < min_runtime) continue;
    reg.add(p.nodes, p.value);
  }
  if (reg.count() < kMinRegressionPoints || !reg.valid()) return out;
  out.valid = true;
  out.value = reg.predict(nodes);
  out.ci_halfwidth = reg.prediction_halfwidth(nodes, alpha);
  out.count = reg.count();
  return out;
}

}  // namespace rtp
