// Predictor factory shared by the experiment harness, benches and examples.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "predict/template_set.hpp"
#include "sched/estimator.hpp"
#include "workload/workload.hpp"

namespace rtp {

enum class PredictorKind { Actual, MaxRuntime, Stf, Gibbons, DowneyAverage, DowneyMedian };

/// Human-readable name matching the paper's table captions.
std::string to_string(PredictorKind kind);

/// Parse "actual" / "max" / "stf" / "gibbons" / "downey-avg" / "downey-med".
PredictorKind predictor_kind_from_string(const std::string& text);

/// Build a fresh estimator of `kind` for `workload`.  Stf uses
/// `templates` when given, else the hand-built default set for the
/// workload's fields.  MaxRuntime derives per-queue limits from the
/// workload (the paper's SDSC construction).
std::unique_ptr<RuntimeEstimator> make_runtime_estimator(
    PredictorKind kind, const Workload& workload,
    const std::optional<TemplateSet>& templates = std::nullopt);

class FallbackEstimator;

/// Wrap `kind` in the graceful-degradation chain: the primary predictor,
/// then (for STF) Gibbons as a structural backup, then category-mean /
/// workload-mean / static tiers.  Exposes per-tier counters for
/// experiments; see predict/fallback.hpp.
std::unique_ptr<FallbackEstimator> make_fallback_estimator(
    PredictorKind kind, const Workload& workload,
    const std::optional<TemplateSet>& templates = std::nullopt);

}  // namespace rtp
