// Baseline run-time predictors: the oracle and user-supplied maxima.
#pragma once

#include <string>
#include <unordered_map>

#include "sched/estimator.hpp"
#include "stats/summary.hpp"
#include "workload/workload.hpp"

namespace rtp {

/// Oracle: predicts each job's actual run time exactly.  The paper's
/// "using actual run times" rows — an upper bound on every experiment.
class ActualRuntimePredictor final : public RuntimeEstimator {
 public:
  Seconds estimate(const Job& job, Seconds age) override;
  std::string name() const override { return "actual"; }
};

/// User-supplied maximum run times, as EASY uses.  For workloads without
/// per-job maxima (the SDSC traces) the paper derives a per-queue maximum:
/// the longest run time observed in that queue over the whole trace; this
/// predictor precomputes those from the workload it is constructed with.
class MaxRuntimePredictor final : public RuntimeEstimator {
 public:
  explicit MaxRuntimePredictor(const Workload& workload);

  Seconds estimate(const Job& job, Seconds age) override;
  std::string name() const override { return "max-runtime"; }

  /// Derived per-queue limit (tests); kNoTime when the queue is unknown.
  Seconds queue_limit(const std::string& queue) const;

 private:
  std::unordered_map<std::string, Seconds> queue_max_;
  Seconds global_max_ = 0.0;
};

/// Fixed-value predictor (tests and degenerate baselines).
class ConstantPredictor final : public RuntimeEstimator {
 public:
  explicit ConstantPredictor(Seconds value) : value_(value) {}
  Seconds estimate(const Job& job, Seconds age) override;
  std::string name() const override { return "constant"; }

 private:
  Seconds value_;
};

}  // namespace rtp
