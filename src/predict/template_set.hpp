// Similarity templates (paper §2.1).
//
// A template selects which job characteristics define "similar": a subset of
// the categorical characteristics, optionally a node-range partition, plus
// how to turn a category's history into a prediction (estimator type,
// absolute vs relative run times, bounded history, and whether to condition
// on the job's current running time).
//
// Note on the running-time condition: the paper's text says predictions use
// points "that have an execution time less than this running time"; a job
// that has already run for `age` must finish with run time >= age, so — in
// line with Gibbons's rtime templates and Downey's conditional estimators —
// we condition on points with run time >= age and treat the paper's wording
// as a typo.  DESIGN.md records the substitution.
#pragma once

#include <string>
#include <vector>

#include "workload/fields.hpp"
#include "workload/job.hpp"

namespace rtp {

/// How a category's data points become one prediction (paper: mean, linear,
/// inverse and logarithmic regressions of run time on number of nodes).
enum class EstimatorKind { Mean, LinearRegression, InverseRegression, LogRegression };

std::string to_string(EstimatorKind kind);

struct Template {
  /// Categorical characteristics partitioning jobs (may be empty = "()").
  FieldMask characteristics;

  /// Partition by requested nodes into ranges of `node_range_size`.
  bool use_nodes = false;
  int node_range_size = 1;  // power of two in [1, 512]

  /// Store run time / user-max-runtime ratios instead of absolute times.
  bool relative = false;

  EstimatorKind estimator = EstimatorKind::Mean;

  /// Per-category history bound; 0 = unlimited.
  std::size_t max_history = 0;

  /// Condition predictions on the job's current age (running time).
  bool condition_on_age = false;

  /// True when every characteristic the template uses is recorded by a
  /// trace with fields `available` (and relative templates have maxima).
  bool feasible_for(FieldMask available, bool trace_has_max_runtimes) const;

  /// Category key for a job, e.g. "u=wsmith\x1fn=3".  Node bucket index is
  /// (nodes - 1) / node_range_size.
  std::string key_for(const Job& job) const;

  /// Human-readable form, e.g. "(u,e,n=4) mean rel hist=128 age".
  std::string describe() const;

  bool operator==(const Template&) const = default;
};

/// An ordered collection of templates; the unit the GA searches over.
struct TemplateSet {
  std::vector<Template> templates;

  std::string describe() const;
  bool operator==(const TemplateSet&) const = default;
};

/// Paper-informed hand-built template set for a trace with the given
/// fields: per-user/executable/argument categories where available, node
/// partitions at a few range sizes, and coarse fallbacks.  Used when no GA
/// search result is supplied.
TemplateSet default_template_set(FieldMask available, bool trace_has_max_runtimes);

}  // namespace rtp
