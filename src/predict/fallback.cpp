#include "predict/fallback.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

namespace rtp {

const char* to_string(FallbackTier tier) {
  switch (tier) {
    case FallbackTier::Primary: return "primary";
    case FallbackTier::Secondary: return "secondary";
    case FallbackTier::CategoryMean: return "category-mean";
    case FallbackTier::WorkloadMean: return "workload-mean";
    case FallbackTier::Default: return "default";
  }
  fail("unknown fallback tier");
}

std::size_t FallbackCounters::total() const {
  return std::accumulate(fired.begin(), fired.end(), std::size_t{0});
}

FallbackEstimator::FallbackEstimator(std::unique_ptr<RuntimeEstimator> primary,
                                     std::unique_ptr<RuntimeEstimator> secondary,
                                     FallbackOptions options)
    : primary_(std::move(primary)), secondary_(std::move(secondary)), options_(options) {
  RTP_CHECK(primary_ != nullptr, "FallbackEstimator needs a primary predictor");
  RTP_CHECK(options_.min_category_points >= 1,
            "FallbackEstimator: min_category_points must be >= 1");
}

std::string FallbackEstimator::category_key(const Job& job) {
  if (!job.queue.empty()) return "q:" + job.queue;
  if (!job.executable.empty()) return "e:" + job.executable;
  if (!job.user.empty()) return "u:" + job.user;
  return {};
}

Seconds FallbackEstimator::serve(FallbackTier tier, Seconds value, Seconds age) {
  ++counters_.fired[static_cast<int>(tier)];
  last_tier_ = tier;
  return std::max({value, age + 1.0, 1.0});
}

Seconds FallbackEstimator::estimate(const Job& job, Seconds age) {
  if (auto v = primary_->try_estimate(job, age))
    return serve(FallbackTier::Primary, *v, age);
  if (secondary_)
    if (auto v = secondary_->try_estimate(job, age))
      return serve(FallbackTier::Secondary, *v, age);

  const std::string key = category_key(job);
  if (!key.empty()) {
    auto it = category_means_.find(key);
    if (it != category_means_.end() && it->second.count() >= options_.min_category_points)
      return serve(FallbackTier::CategoryMean, it->second.mean(), age);
  }
  if (workload_mean_.count() > 0)
    return serve(FallbackTier::WorkloadMean, workload_mean_.mean(), age);

  const Seconds value =
      job.has_max_runtime() ? job.max_runtime : options_.default_estimate;
  return serve(FallbackTier::Default, value, age);
}

void FallbackEstimator::job_completed(const Job& job, Seconds completion_time) {
  primary_->job_completed(job, completion_time);
  if (secondary_) secondary_->job_completed(job, completion_time);
  const std::string key = category_key(job);
  if (!key.empty()) category_means_[key].add(job.runtime);
  workload_mean_.add(job.runtime);
}

std::string FallbackEstimator::name() const {
  std::string out = "fallback(" + primary_->name();
  if (secondary_) out += "->" + secondary_->name();
  return out + ")";
}

}  // namespace rtp
