// Greedy template search: the baseline the paper's earlier work compared
// the GA against (and found inferior).  Kept as an ablation.
//
// A candidate pool of mean-estimator templates is enumerated (every subset
// of the recorded categorical characteristics, a few node-range sizes,
// absolute/relative, and a few history bounds).  Starting from the empty
// set, the candidate that most reduces the mean prediction error is added
// until no candidate improves or the set reaches max_templates.
#pragma once

#include <cstdint>

#include "search/ga.hpp"

namespace rtp {

struct GreedyOptions {
  std::size_t max_templates = 10;
  /// Random subsample bound on the candidate pool (0 = unlimited).
  std::size_t candidate_limit = 256;
  std::uint64_t seed = 0x97EED1;
  std::size_t threads = 0;
  /// Relative improvement below which the search stops.
  double min_improvement = 1e-3;
};

SearchResult search_templates_greedy(const PredictionWorkload& eval, FieldMask available,
                                     bool trace_has_max_runtimes,
                                     const GreedyOptions& options = {});

}  // namespace rtp
