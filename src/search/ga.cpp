#include "search/ga.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_map>

#include "core/error.hpp"
#include "core/log.hpp"
#include "predict/stf.hpp"

namespace rtp {
namespace {

double evaluate_genome(const TemplateCodec& codec, const PredictionWorkload& eval,
                       const Genome& genome) {
  // Eval jobs come from one workload (unique stable ids), so the per-genome
  // category-key cache is safe: each job's keys are built once instead of
  // once per predict plus once per insert.
  StfOptions options;
  options.memoize_keys = true;
  StfPredictor predictor(codec.decode(genome), options);
  return eval.evaluate(predictor);
}

/// Paper fitness scaling: F_min + (E_max - E) / (E_max - E_min) * (F_max -
/// F_min), with F_max = 4 F_min.  Degenerates to uniform fitness when all
/// errors coincide.
std::vector<double> scale_fitness(const std::vector<double>& errors, double f_min) {
  const double f_max = 4.0 * f_min;
  const auto [lo, hi] = std::minmax_element(errors.begin(), errors.end());
  std::vector<double> fitness(errors.size(), (f_min + f_max) / 2.0);
  if (*hi - *lo > 1e-12) {
    for (std::size_t i = 0; i < errors.size(); ++i)
      fitness[i] = f_min + (*hi - errors[i]) / (*hi - *lo) * (f_max - f_min);
  }
  return fitness;
}

std::size_t sample_parent(Rng& rng, const std::vector<double>& fitness) {
  return rng.weighted_index(fitness);
}

/// Variable-length single-point crossover (paper §2.1).  Children swap a
/// suffix starting inside a randomly chosen template of each parent; both
/// children must respect the template-count bounds.
std::pair<Genome, Genome> crossover(Rng& rng, const TemplateCodec& codec, const Genome& p1,
                                    const Genome& p2, std::size_t min_templates,
                                    std::size_t max_templates) {
  const std::size_t b = codec.bits_per_template();
  const std::size_t n = p1.size() / b;
  const std::size_t m = p2.size() / b;

  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::size_t i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<long long>(n) - 1));
    // Child1 has i + 1 + (m - 1 - j) templates, child2 has j + 1 + (n - 1 - i):
    // solve both bounds for j.
    const std::size_t c1 = i + 1, c2r = n - i;  // fixed contributions
    // min <= c1 + (m-1-j) <= max  and  min <= j + c2r <= max
    const long long j_lo_1 = static_cast<long long>(c1) + static_cast<long long>(m) - 1 -
                             static_cast<long long>(max_templates);
    const long long j_hi_1 = static_cast<long long>(c1) + static_cast<long long>(m) - 1 -
                             static_cast<long long>(min_templates);
    const long long j_lo_2 =
        static_cast<long long>(min_templates) - static_cast<long long>(c2r);
    const long long j_hi_2 =
        static_cast<long long>(max_templates) - static_cast<long long>(c2r);
    const long long j_lo = std::max({j_lo_1, j_lo_2, 0LL});
    const long long j_hi = std::min({j_hi_1, j_hi_2, static_cast<long long>(m) - 1});
    if (j_lo > j_hi) continue;
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(j_lo, j_hi));
    const std::size_t p = static_cast<std::size_t>(rng.uniform_int(0, static_cast<long long>(b) - 1));

    // n1 = first p bits of t1_i + last (b - p) bits of t2_j; child1 =
    // t1[0..i-1], n1, t2[j+1..]; symmetrically for child2.
    Genome c1g, c2g;
    c1g.insert(c1g.end(), p1.begin(), p1.begin() + static_cast<std::ptrdiff_t>(i * b));
    c1g.insert(c1g.end(), p1.begin() + static_cast<std::ptrdiff_t>(i * b),
               p1.begin() + static_cast<std::ptrdiff_t>(i * b + p));
    c1g.insert(c1g.end(), p2.begin() + static_cast<std::ptrdiff_t>(j * b + p),
               p2.begin() + static_cast<std::ptrdiff_t>((j + 1) * b));
    c1g.insert(c1g.end(), p2.begin() + static_cast<std::ptrdiff_t>((j + 1) * b), p2.end());

    c2g.insert(c2g.end(), p2.begin(), p2.begin() + static_cast<std::ptrdiff_t>(j * b));
    c2g.insert(c2g.end(), p2.begin() + static_cast<std::ptrdiff_t>(j * b),
               p2.begin() + static_cast<std::ptrdiff_t>(j * b + p));
    c2g.insert(c2g.end(), p1.begin() + static_cast<std::ptrdiff_t>(i * b + p),
               p1.begin() + static_cast<std::ptrdiff_t>((i + 1) * b));
    c2g.insert(c2g.end(), p1.begin() + static_cast<std::ptrdiff_t>((i + 1) * b), p1.end());

    RTP_ASSERT(c1g.size() % b == 0 && c2g.size() % b == 0);
    return {std::move(c1g), std::move(c2g)};
  }
  return {p1, p2};  // no feasible cut found; pass parents through
}

void mutate(Rng& rng, Genome& genome, double rate) {
  for (auto& bit : genome)
    if (rng.chance(rate)) bit ^= 1u;
}

}  // namespace

SearchResult search_templates_ga(const PredictionWorkload& eval, FieldMask available,
                                 bool trace_has_max_runtimes, const GaOptions& options) {
  RTP_CHECK(options.population >= 4 && options.population % 2 == 0,
            "GA population must be even and >= 4");
  RTP_CHECK(options.min_templates >= 1 &&
                options.min_templates <= options.max_templates,
            "GA template bounds are inconsistent");
  RTP_CHECK(options.elite < options.population, "GA elite must be smaller than population");

  const TemplateCodec codec(available, trace_has_max_runtimes);
  Rng rng(options.seed);
  ThreadPool pool(options.threads);

  std::vector<Genome> population;
  population.reserve(options.population);
  // Initial template counts are biased small (<= 4) but must respect the
  // caller's lower bound: with min_templates > 4 the naive min() would
  // invert the uniform_int bounds.
  const std::size_t init_hi = std::max(
      options.min_templates, std::min<std::size_t>(options.max_templates, 4));
  for (std::size_t i = 0; i < options.population; ++i) {
    const std::size_t templates = static_cast<std::size_t>(
        rng.uniform_int(static_cast<long long>(options.min_templates),
                        static_cast<long long>(init_hi)));
    population.push_back(codec.random_genome(rng, templates));
  }

  SearchResult result;
  Genome best_genome;
  double best_error = std::numeric_limits<double>::infinity();

  // Generation-spanning fitness memo: canonical genome form -> error.
  // Elites re-enter every generation unmutated and crossover/mutation
  // routinely reproduce earlier genomes; neither replays the workload.
  std::unordered_map<std::string, double> memo;

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    std::vector<double> errors(population.size());
    std::vector<std::string> keys(population.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
      keys[i] = codec.canonical_key(population[i]);

    // First occurrence of each not-yet-memoized key, in population order so
    // the evaluation schedule (and thus the result) is thread-count
    // independent.
    std::vector<std::size_t> fresh;
    fresh.reserve(population.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (memo.count(keys[i]) != 0) {
        ++result.memo_hits;
      } else {
        memo.emplace(keys[i], std::numeric_limits<double>::quiet_NaN());
        fresh.push_back(i);
      }
    }
    parallel_for(pool, fresh.size(), [&](std::size_t j) {
      errors[fresh[j]] = evaluate_genome(codec, eval, population[fresh[j]]);
    });
    for (std::size_t j : fresh) memo[keys[j]] = errors[j];
    for (std::size_t i = 0; i < keys.size(); ++i) errors[i] = memo.at(keys[i]);
    result.evaluations += fresh.size();
    result.memo_misses += fresh.size();

    // Track the best-ever individual.
    for (std::size_t i = 0; i < population.size(); ++i) {
      if (errors[i] < best_error) {
        best_error = errors[i];
        best_genome = population[i];
      }
    }
    result.best_error_per_generation.push_back(best_error);
    log_debug("GA generation ", gen, ": best error ", to_minutes(best_error), " min");

    if (gen + 1 == options.generations) break;

    const std::vector<double> fitness = scale_fitness(errors, options.fitness_min);

    // Elitism: the generation's best individuals survive unmutated.
    std::vector<std::size_t> order(population.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return errors[a] < errors[b]; });

    std::vector<Genome> next;
    next.reserve(options.population);
    for (std::size_t e = 0; e < options.elite && e < order.size(); ++e)
      next.push_back(population[order[e]]);

    while (next.size() < options.population) {
      const Genome& p1 = population[sample_parent(rng, fitness)];
      const Genome& p2 = population[sample_parent(rng, fitness)];
      auto [c1, c2] = crossover(rng, codec, p1, p2, options.min_templates,
                                options.max_templates);
      mutate(rng, c1, options.mutation_rate);
      next.push_back(std::move(c1));
      if (next.size() < options.population) {
        mutate(rng, c2, options.mutation_rate);
        next.push_back(std::move(c2));
      }
    }
    population = std::move(next);
  }

  result.best = codec.decode(best_genome);
  result.best_error = best_error;
  return result;
}

}  // namespace rtp
