#include "search/eval.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "predict/simple.hpp"
#include "sim/simulator.hpp"

namespace rtp {

PredictionWorkload PredictionWorkload::from_schedule(const Workload& workload,
                                                     const std::vector<Seconds>& start_times) {
  RTP_CHECK(start_times.size() >= workload.size(),
            "from_schedule: start_times must cover every job");
  PredictionWorkload pw;
  pw.events_.reserve(workload.size() * 2);
  for (const Job& job : workload.jobs()) {
    // Job ids need not be dense; a sparse id past the schedule is caller
    // error, not a license to read out of bounds.
    RTP_CHECK(job.id < start_times.size(),
              "from_schedule: job id " + std::to_string(job.id) +
                  " has no start time (start_times has " +
                  std::to_string(start_times.size()) + " entries)");
    RTP_CHECK(start_times[job.id] >= 0.0, "from_schedule: job never started");
    pw.events_.push_back({job.submit, false, &job});
    pw.events_.push_back({start_times[job.id] + job.runtime, true, &job});
  }
  // Completions before predictions at equal timestamps, matching the live
  // simulator's event ordering.
  std::stable_sort(pw.events_.begin(), pw.events_.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.is_insert && !b.is_insert;
  });
  pw.predictions_ = workload.size();
  return pw;
}

PredictionWorkload PredictionWorkload::from_policy(const Workload& workload,
                                                   PolicyKind policy) {
  MaxRuntimePredictor max_estimator(workload);
  auto policy_impl = make_policy(policy);
  const SimResult sim = simulate(workload, *policy_impl, max_estimator);
  return from_schedule(workload, sim.start_times);
}

double PredictionWorkload::evaluate(RuntimeEstimator& estimator) const {
  double total_error = 0.0;
  std::size_t predictions = 0;
  for (const Event& ev : events_) {
    if (ev.is_insert) {
      estimator.job_completed(*ev.job, ev.time);
    } else {
      const Seconds predicted = estimator.estimate(*ev.job, 0.0);
      total_error += std::fabs(predicted - ev.job->runtime);
      ++predictions;
    }
  }
  return predictions == 0 ? 0.0 : total_error / static_cast<double>(predictions);
}

}  // namespace rtp
