// Binary template encoding for the genetic-algorithm search (paper §2.1).
//
// Each template is a fixed-width bit string; an individual (template set)
// is a concatenation of 1 to 10 of them.  Encoded per template, matching
// the paper's list:
//
//   [0..1]   estimator kind (mean / linear / inverse / log regression)
//   [2]      absolute vs relative run times
//   [3..3+k) one enable bit per categorical characteristic the trace records
//   [..]     node partition enable + 4-bit range exponent (2^0 .. 2^9)
//   [..]     history bound enable + 4-bit limit exponent (2^1 .. 2^16)
//   [..]     running-time (age) conditioning enable
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "predict/template_set.hpp"

namespace rtp {

/// A genome: concatenated template bit strings (values 0/1).
using Genome = std::vector<std::uint8_t>;

class TemplateCodec {
 public:
  /// `available` is the trace's recorded characteristics;
  /// `trace_has_max_runtimes` gates the relative-run-time bit.
  TemplateCodec(FieldMask available, bool trace_has_max_runtimes);

  std::size_t bits_per_template() const { return bits_per_template_; }

  /// Number of templates encoded in a genome (must divide evenly).
  std::size_t template_count(const Genome& genome) const;

  Template decode_template(std::span<const std::uint8_t> bits) const;
  TemplateSet decode(const Genome& genome) const;

  /// Append the encoding of `t` to `genome`.  Characteristics the codec
  /// does not model are dropped.
  void encode_template(const Template& t, Genome& genome) const;
  Genome encode(const TemplateSet& set) const;

  /// Uniformly random genome with `templates` templates.
  Genome random_genome(Rng& rng, std::size_t templates) const;

  /// Semantics-preserving canonical form: decoding and re-encoding
  /// normalizes every don't-care bit pattern (masked relative bit, modulo
  /// range/history exponents, disabled-history exponent bits), and exact
  /// duplicate templates after the first are dropped — a later duplicate
  /// produces identical category estimates and can never win the strictly-
  /// smaller-CI contest, so removal cannot change any prediction.  Template
  /// order is preserved; two genomes with equal canonical forms evaluate to
  /// identical fitness on any prediction workload.
  Genome canonicalize(const Genome& genome) const;

  /// Compact hashable key of the canonical form (used by the GA's
  /// generation-spanning fitness memo table).
  std::string canonical_key(const Genome& genome) const;

  const std::vector<Characteristic>& characteristics() const { return chars_; }

 private:
  std::vector<Characteristic> chars_;  // categorical, recorded by the trace
  bool has_max_;
  std::size_t bits_per_template_;
};

}  // namespace rtp
