#include "search/greedy.hpp"

#include <algorithm>
#include <limits>

#include "core/log.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "predict/stf.hpp"

namespace rtp {
namespace {

std::vector<Template> candidate_pool(FieldMask available, bool has_max) {
  std::vector<Characteristic> chars;
  for (Characteristic c : all_characteristics())
    if (c != Characteristic::Nodes && available.has(c)) chars.push_back(c);

  const std::size_t subsets = std::size_t{1} << chars.size();
  static constexpr int kNodeRanges[] = {0, 1, 4, 16, 64};  // 0 = nodes unused
  static constexpr std::size_t kHistories[] = {0, 32, 512};

  std::vector<Template> pool;
  for (std::size_t mask = 0; mask < subsets; ++mask) {
    Template base;
    for (std::size_t i = 0; i < chars.size(); ++i)
      if (mask & (std::size_t{1} << i)) base.characteristics.set(chars[i]);
    for (int range : kNodeRanges) {
      Template t = base;
      t.use_nodes = range > 0;
      t.node_range_size = range > 0 ? range : 1;
      for (std::size_t hist : kHistories) {
        t.max_history = hist;
        t.relative = false;
        pool.push_back(t);
        if (has_max) {
          t.relative = true;
          pool.push_back(t);
        }
      }
    }
  }
  return pool;
}

double error_of(const TemplateSet& set, const PredictionWorkload& eval) {
  StfPredictor predictor(set);
  return eval.evaluate(predictor);
}

}  // namespace

SearchResult search_templates_greedy(const PredictionWorkload& eval, FieldMask available,
                                     bool trace_has_max_runtimes,
                                     const GreedyOptions& options) {
  std::vector<Template> pool = candidate_pool(available, trace_has_max_runtimes);
  if (options.candidate_limit > 0 && pool.size() > options.candidate_limit) {
    Rng rng(options.seed);
    rng.shuffle(pool);
    pool.resize(options.candidate_limit);
  }

  ThreadPool threads(options.threads);
  SearchResult result;
  result.best_error = std::numeric_limits<double>::infinity();

  TemplateSet current;
  double current_error = std::numeric_limits<double>::infinity();

  while (current.templates.size() < options.max_templates) {
    std::vector<double> errors(pool.size(), std::numeric_limits<double>::infinity());
    parallel_for(threads, pool.size(), [&](std::size_t i) {
      TemplateSet trial = current;
      trial.templates.push_back(pool[i]);
      errors[i] = error_of(trial, eval);
    });
    result.evaluations += pool.size();

    const auto best_it = std::min_element(errors.begin(), errors.end());
    const double best_err = *best_it;
    const bool first_round = current.templates.empty();
    if (!first_round &&
        best_err >= current_error * (1.0 - options.min_improvement)) {
      break;  // no candidate improves enough
    }
    const std::size_t best_idx = static_cast<std::size_t>(best_it - errors.begin());
    current.templates.push_back(pool[best_idx]);
    current_error = best_err;
    result.best_error_per_generation.push_back(current_error);
    log_debug("greedy: added ", pool[best_idx].describe(), " error ",
              to_minutes(current_error), " min");
  }

  result.best = std::move(current);
  result.best_error = current_error;
  return result;
}

}  // namespace rtp
