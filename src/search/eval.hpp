// Run-time prediction workloads: the GA's fitness data (paper §2.1).
//
// A prediction workload is a time-ordered sequence of "predict job J" and
// "insert completed job J" events.  The paper generates these from
// scheduling simulations that use maximum run times as predictions; a
// prediction is made for each job when it is submitted and its run time is
// inserted into the history when it completes under that schedule.
#pragma once

#include <vector>

#include "sched/estimator.hpp"
#include "sched/policy.hpp"
#include "workload/workload.hpp"

namespace rtp {

class PredictionWorkload {
 public:
  struct Event {
    Seconds time = 0.0;
    bool is_insert = false;  // false: predict at submission
    const Job* job = nullptr;
  };

  /// Build from a schedule: job J is predicted at J.submit and inserted at
  /// start_times[J.id] + J.runtime.  `start_times` must cover every job.
  /// The referenced workload must outlive the prediction workload.
  static PredictionWorkload from_schedule(const Workload& workload,
                                          const std::vector<Seconds>& start_times);

  /// Paper protocol: simulate `policy` on maximum run times, then build the
  /// prediction workload from the resulting schedule.
  static PredictionWorkload from_policy(const Workload& workload, PolicyKind policy);

  /// Replay the events through `estimator`: inserts call job_completed,
  /// predicts call estimate(job, 0).  Returns the mean absolute run-time
  /// prediction error in seconds (0 when there are no predictions).
  double evaluate(RuntimeEstimator& estimator) const;

  const std::vector<Event>& events() const { return events_; }
  std::size_t prediction_count() const { return predictions_; }

 private:
  std::vector<Event> events_;
  std::size_t predictions_ = 0;
};

}  // namespace rtp
