#include "search/codec.hpp"

#include "core/error.hpp"

namespace rtp {
namespace {

constexpr std::size_t kEstimatorBits = 2;
constexpr std::size_t kRelativeBits = 1;
constexpr std::size_t kNodeBits = 1 + 4;     // enable + range exponent
constexpr std::size_t kHistoryBits = 1 + 4;  // enable + limit exponent
constexpr std::size_t kAgeBits = 1;

std::size_t read_bits(std::span<const std::uint8_t> bits, std::size_t offset,
                      std::size_t count) {
  std::size_t value = 0;
  for (std::size_t i = 0; i < count; ++i) value = (value << 1) | (bits[offset + i] & 1u);
  return value;
}

void write_bits(Genome& genome, std::size_t value, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i)
    genome.push_back(static_cast<std::uint8_t>((value >> (count - 1 - i)) & 1u));
}

}  // namespace

TemplateCodec::TemplateCodec(FieldMask available, bool trace_has_max_runtimes)
    : has_max_(trace_has_max_runtimes) {
  for (Characteristic c : all_characteristics())
    if (c != Characteristic::Nodes && available.has(c)) chars_.push_back(c);
  bits_per_template_ =
      kEstimatorBits + kRelativeBits + chars_.size() + kNodeBits + kHistoryBits + kAgeBits;
}

std::size_t TemplateCodec::template_count(const Genome& genome) const {
  RTP_CHECK(genome.size() % bits_per_template_ == 0,
            "genome length is not a multiple of the template width");
  return genome.size() / bits_per_template_;
}

Template TemplateCodec::decode_template(std::span<const std::uint8_t> bits) const {
  RTP_CHECK(bits.size() == bits_per_template_, "decode_template: wrong bit count");
  Template t;
  std::size_t pos = 0;

  switch (read_bits(bits, pos, kEstimatorBits)) {
    case 0: t.estimator = EstimatorKind::Mean; break;
    case 1: t.estimator = EstimatorKind::LinearRegression; break;
    case 2: t.estimator = EstimatorKind::InverseRegression; break;
    default: t.estimator = EstimatorKind::LogRegression; break;
  }
  pos += kEstimatorBits;

  t.relative = has_max_ && read_bits(bits, pos, kRelativeBits) != 0;
  pos += kRelativeBits;

  for (Characteristic c : chars_) {
    if (bits[pos] != 0) t.characteristics.set(c);
    ++pos;
  }

  t.use_nodes = bits[pos] != 0;
  ++pos;
  const std::size_t range_exp = read_bits(bits, pos, 4) % 10;  // 2^0 .. 2^9
  t.node_range_size = 1 << range_exp;
  pos += 4;

  const bool history_limited = bits[pos] != 0;
  ++pos;
  const std::size_t hist_exp = (read_bits(bits, pos, 4) % 16) + 1;  // 2^1 .. 2^16
  t.max_history = history_limited ? (std::size_t{1} << hist_exp) : 0;
  pos += 4;

  t.condition_on_age = bits[pos] != 0;
  ++pos;
  RTP_ASSERT(pos == bits_per_template_);
  return t;
}

TemplateSet TemplateCodec::decode(const Genome& genome) const {
  TemplateSet set;
  const std::size_t count = template_count(genome);
  set.templates.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    set.templates.push_back(decode_template(
        std::span(genome).subspan(i * bits_per_template_, bits_per_template_)));
  return set;
}

void TemplateCodec::encode_template(const Template& t, Genome& genome) const {
  switch (t.estimator) {
    case EstimatorKind::Mean: write_bits(genome, 0, kEstimatorBits); break;
    case EstimatorKind::LinearRegression: write_bits(genome, 1, kEstimatorBits); break;
    case EstimatorKind::InverseRegression: write_bits(genome, 2, kEstimatorBits); break;
    case EstimatorKind::LogRegression: write_bits(genome, 3, kEstimatorBits); break;
  }
  write_bits(genome, t.relative ? 1 : 0, kRelativeBits);
  for (Characteristic c : chars_)
    genome.push_back(t.characteristics.has(c) ? 1 : 0);

  genome.push_back(t.use_nodes ? 1 : 0);
  std::size_t range_exp = 0;
  while ((1 << range_exp) < t.node_range_size && range_exp < 9) ++range_exp;
  write_bits(genome, range_exp, 4);

  genome.push_back(t.max_history > 0 ? 1 : 0);
  std::size_t hist_exp = 1;
  while ((std::size_t{1} << hist_exp) < t.max_history && hist_exp < 16) ++hist_exp;
  write_bits(genome, hist_exp - 1, 4);

  genome.push_back(t.condition_on_age ? 1 : 0);
}

Genome TemplateCodec::encode(const TemplateSet& set) const {
  Genome genome;
  genome.reserve(set.templates.size() * bits_per_template_);
  for (const Template& t : set.templates) encode_template(t, genome);
  return genome;
}

Genome TemplateCodec::canonicalize(const Genome& genome) const {
  const TemplateSet decoded = decode(genome);
  TemplateSet unique;
  unique.templates.reserve(decoded.templates.size());
  for (const Template& t : decoded.templates) {
    bool seen = false;
    for (const Template& u : unique.templates)
      if (u == t) {
        seen = true;
        break;
      }
    if (!seen) unique.templates.push_back(t);
  }
  return encode(unique);
}

std::string TemplateCodec::canonical_key(const Genome& genome) const {
  const Genome canonical = canonicalize(genome);
  // Pack eight bits per byte; prefix with the bit count so genomes of
  // different lengths can never collide through zero padding.
  std::string key;
  key.reserve(2 + canonical.size() / 8 + 1);
  key.push_back(static_cast<char>(canonical.size() & 0xFF));
  key.push_back(static_cast<char>((canonical.size() >> 8) & 0xFF));
  std::uint8_t byte = 0;
  for (std::size_t i = 0; i < canonical.size(); ++i) {
    byte = static_cast<std::uint8_t>((byte << 1) | (canonical[i] & 1u));
    if (i % 8 == 7) {
      key.push_back(static_cast<char>(byte));
      byte = 0;
    }
  }
  if (canonical.size() % 8 != 0) key.push_back(static_cast<char>(byte));
  return key;
}

Genome TemplateCodec::random_genome(Rng& rng, std::size_t templates) const {
  RTP_CHECK(templates >= 1, "random_genome: need at least one template");
  Genome genome(templates * bits_per_template_);
  for (auto& bit : genome) bit = rng.chance(0.5) ? 1 : 0;
  return genome;
}

}  // namespace rtp
