// Genetic-algorithm template search (paper §2.1, "Template Definition and
// Search").
//
// Individuals are template sets of 1-10 templates (variable-length bit
// strings, see TemplateCodec).  Each generation: evaluate the mean
// run-time prediction error of every individual on a prediction workload;
// map errors to fitness with the paper's linear scaling (F_max = 4 F_min);
// select parents by stochastic sampling with replacement; apply the paper's
// variable-length single-point crossover; mutate every bit with p = 0.01;
// and carry the two best individuals over unmutated (elitism).
#pragma once

#include <cstdint>
#include <vector>

#include "core/thread_pool.hpp"
#include "predict/template_set.hpp"
#include "search/codec.hpp"
#include "search/eval.hpp"

namespace rtp {

struct GaOptions {
  std::size_t population = 40;  // even, >= 4
  std::size_t generations = 30;
  std::size_t min_templates = 1;
  std::size_t max_templates = 10;
  double mutation_rate = 0.01;
  double fitness_min = 1.0;  // F_max = 4 * F_min per the paper
  std::size_t elite = 2;
  std::uint64_t seed = 0x6A5EED;
  std::size_t threads = 0;  // 0 = hardware concurrency
};

struct SearchResult {
  TemplateSet best;
  double best_error = 0.0;  // mean absolute run-time error, seconds
  std::vector<double> best_error_per_generation;
  /// Workload replays actually performed (== memo_misses): elites and
  /// duplicate genomes are served from the generation-spanning fitness memo
  /// table keyed by TemplateCodec::canonical_key.
  std::size_t evaluations = 0;
  std::size_t memo_hits = 0;
  std::size_t memo_misses = 0;
};

SearchResult search_templates_ga(const PredictionWorkload& eval, FieldMask available,
                                 bool trace_has_max_runtimes, const GaOptions& options = {});

}  // namespace rtp
