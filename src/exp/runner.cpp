#include "exp/runner.hpp"

#include <algorithm>
#include <thread>

namespace rtp {

ExperimentRunner::ExperimentRunner(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

ExperimentRunner::~ExperimentRunner() = default;

std::size_t ExperimentRunner::thread_count() const {
  return pool_ ? pool_->thread_count() : 1;
}

void ExperimentRunner::for_each(std::size_t count,
                                const std::function<void(std::size_t)>& body) const {
  if (!pool_ || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  parallel_for(*pool_, count, body);
}

}  // namespace rtp
