#include "exp/paper_values.hpp"

#include "core/error.hpp"

namespace rtp {
namespace {

constexpr PolicyKind kFcfs = PolicyKind::Fcfs;
constexpr PolicyKind kLwf = PolicyKind::Lwf;
constexpr PolicyKind kBf = PolicyKind::BackfillConservative;

// Table 4: wait-time prediction performance using actual run times.
const std::vector<PaperWaitRow> kTable4{
    {"ANL", kLwf, 37.14, 43},    {"ANL", kBf, 5.84, 3},
    {"CTC", kLwf, 4.05, 39},     {"CTC", kBf, 2.62, 10},
    {"SDSC95", kLwf, 5.83, 39},  {"SDSC95", kBf, 1.12, 4},
    {"SDSC96", kLwf, 3.32, 42},  {"SDSC96", kBf, 0.30, 3},
};

// Table 5: using maximum run times.
const std::vector<PaperWaitRow> kTable5{
    {"ANL", kFcfs, 996.67, 186},  {"ANL", kLwf, 97.12, 112},
    {"ANL", kBf, 429.05, 242},    {"CTC", kFcfs, 125.36, 128},
    {"CTC", kLwf, 9.86, 94},      {"CTC", kBf, 51.16, 190},
    {"SDSC95", kFcfs, 162.72, 295}, {"SDSC95", kLwf, 28.56, 191},
    {"SDSC95", kBf, 93.81, 333},  {"SDSC96", kFcfs, 47.83, 288},
    {"SDSC96", kLwf, 14.19, 180}, {"SDSC96", kBf, 39.66, 350},
};

// Table 6: using the paper's (STF) run-time predictor.
const std::vector<PaperWaitRow> kTable6{
    {"ANL", kFcfs, 161.49, 30},  {"ANL", kLwf, 44.75, 51},
    {"ANL", kBf, 75.55, 43},     {"CTC", kFcfs, 30.84, 31},
    {"CTC", kLwf, 5.74, 55},     {"CTC", kBf, 11.37, 42},
    {"SDSC95", kFcfs, 20.34, 37}, {"SDSC95", kLwf, 8.72, 58},
    {"SDSC95", kBf, 12.49, 44},  {"SDSC96", kFcfs, 9.74, 59},
    {"SDSC96", kLwf, 4.66, 59},  {"SDSC96", kBf, 5.03, 44},
};

// Table 7: using Gibbons's run-time predictor.
const std::vector<PaperWaitRow> kTable7{
    {"ANL", kFcfs, 350.86, 66},  {"ANL", kLwf, 76.23, 91},
    {"ANL", kBf, 94.01, 53},     {"CTC", kFcfs, 81.45, 83},
    {"CTC", kLwf, 32.34, 309},   {"CTC", kBf, 13.57, 50},
    {"SDSC95", kFcfs, 54.37, 99}, {"SDSC95", kLwf, 11.60, 78},
    {"SDSC95", kBf, 20.27, 72},  {"SDSC96", kFcfs, 22.36, 135},
    {"SDSC96", kLwf, 6.88, 87},  {"SDSC96", kBf, 17.31, 153},
};

// Table 8: Downey's conditional average.
const std::vector<PaperWaitRow> kTable8{
    {"ANL", kFcfs, 443.45, 83},  {"ANL", kLwf, 232.24, 277},
    {"ANL", kBf, 339.10, 191},   {"CTC", kFcfs, 65.22, 66},
    {"CTC", kLwf, 14.78, 141},   {"CTC", kBf, 17.22, 64},
    {"SDSC95", kFcfs, 187.73, 340}, {"SDSC95", kLwf, 35.84, 240},
    {"SDSC95", kBf, 62.96, 223}, {"SDSC96", kFcfs, 83.62, 503},
    {"SDSC96", kLwf, 28.42, 361}, {"SDSC96", kBf, 47.11, 415},
};

// Table 9: Downey's conditional median.
const std::vector<PaperWaitRow> kTable9{
    {"ANL", kFcfs, 534.71, 100}, {"ANL", kLwf, 254.91, 304},
    {"ANL", kBf, 410.57, 232},   {"CTC", kFcfs, 83.33, 85},
    {"CTC", kLwf, 15.47, 148},   {"CTC", kBf, 19.35, 72},
    {"SDSC95", kFcfs, 62.67, 114}, {"SDSC95", kLwf, 18.28, 122},
    {"SDSC95", kBf, 27.52, 98},  {"SDSC96", kFcfs, 34.23, 206},
    {"SDSC96", kLwf, 12.65, 161}, {"SDSC96", kBf, 20.70, 183},
};

// Table 10: scheduling performance using actual run times.
const std::vector<PaperSchedRow> kTable10{
    {"ANL", kLwf, 70.34, 61.20},   {"ANL", kBf, 71.04, 142.45},
    {"CTC", kLwf, 51.28, 11.15},   {"CTC", kBf, 51.28, 23.75},
    {"SDSC95", kLwf, 41.14, 14.48}, {"SDSC95", kBf, 41.14, 21.98},
    {"SDSC96", kLwf, 46.79, 6.80}, {"SDSC96", kBf, 46.79, 10.42},
};

// Table 11: maximum run times.
const std::vector<PaperSchedRow> kTable11{
    {"ANL", kLwf, 70.70, 83.81},   {"ANL", kBf, 71.04, 177.14},
    {"CTC", kLwf, 51.28, 10.48},   {"CTC", kBf, 51.28, 26.86},
    {"SDSC95", kLwf, 41.14, 14.95}, {"SDSC95", kBf, 41.14, 28.20},
    {"SDSC96", kLwf, 46.79, 7.88}, {"SDSC96", kBf, 46.79, 11.34},
};

// Table 12: the paper's run-time prediction technique.
const std::vector<PaperSchedRow> kTable12{
    {"ANL", kLwf, 70.28, 78.22},   {"ANL", kBf, 71.04, 148.77},
    {"CTC", kLwf, 51.28, 13.40},   {"CTC", kBf, 51.28, 22.54},
    {"SDSC95", kLwf, 41.14, 16.19}, {"SDSC95", kBf, 41.14, 22.17},
    {"SDSC96", kLwf, 46.79, 7.79}, {"SDSC96", kBf, 46.79, 10.10},
};

// Table 13: Gibbons's technique.
const std::vector<PaperSchedRow> kTable13{
    {"ANL", kLwf, 70.72, 90.36},   {"ANL", kBf, 71.04, 181.38},
    {"CTC", kLwf, 51.28, 11.04},   {"CTC", kBf, 51.28, 27.31},
    {"SDSC95", kLwf, 41.14, 15.99}, {"SDSC95", kBf, 41.14, 24.83},
    {"SDSC96", kLwf, 46.79, 7.51}, {"SDSC96", kBf, 46.79, 10.82},
};

// Table 14: Downey's conditional average.
const std::vector<PaperSchedRow> kTable14{
    {"ANL", kLwf, 71.04, 154.76},  {"ANL", kBf, 70.88, 246.40},
    {"CTC", kLwf, 51.28, 9.87},    {"CTC", kBf, 51.28, 14.45},
    {"SDSC95", kLwf, 41.14, 16.22}, {"SDSC95", kBf, 41.14, 20.37},
    {"SDSC96", kLwf, 46.79, 7.88}, {"SDSC96", kBf, 46.79, 8.25},
};

// Table 15: Downey's conditional median.
const std::vector<PaperSchedRow> kTable15{
    {"ANL", kLwf, 71.04, 154.76},  {"ANL", kBf, 71.04, 207.17},
    {"CTC", kLwf, 51.28, 11.54},   {"CTC", kBf, 51.28, 16.72},
    {"SDSC95", kLwf, 41.14, 16.36}, {"SDSC95", kBf, 41.14, 19.56},
    {"SDSC96", kLwf, 46.79, 7.80}, {"SDSC96", kBf, 46.79, 8.02},
};

}  // namespace

const std::vector<PaperWaitRow>& paper_wait_table(PredictorKind predictor) {
  switch (predictor) {
    case PredictorKind::Actual: return kTable4;
    case PredictorKind::MaxRuntime: return kTable5;
    case PredictorKind::Stf: return kTable6;
    case PredictorKind::Gibbons: return kTable7;
    case PredictorKind::DowneyAverage: return kTable8;
    case PredictorKind::DowneyMedian: return kTable9;
  }
  fail("unknown predictor kind");
}

const std::vector<PaperSchedRow>& paper_sched_table(PredictorKind predictor) {
  switch (predictor) {
    case PredictorKind::Actual: return kTable10;
    case PredictorKind::MaxRuntime: return kTable11;
    case PredictorKind::Stf: return kTable12;
    case PredictorKind::Gibbons: return kTable13;
    case PredictorKind::DowneyAverage: return kTable14;
    case PredictorKind::DowneyMedian: return kTable15;
  }
  fail("unknown predictor kind");
}

int paper_wait_table_number(PredictorKind predictor) {
  switch (predictor) {
    case PredictorKind::Actual: return 4;
    case PredictorKind::MaxRuntime: return 5;
    case PredictorKind::Stf: return 6;
    case PredictorKind::Gibbons: return 7;
    case PredictorKind::DowneyAverage: return 8;
    case PredictorKind::DowneyMedian: return 9;
  }
  fail("unknown predictor kind");
}

int paper_sched_table_number(PredictorKind predictor) {
  return paper_wait_table_number(predictor) + 6;
}

std::optional<PaperWaitRow> paper_wait_cell(PredictorKind predictor,
                                            std::string_view workload, PolicyKind policy) {
  for (const PaperWaitRow& row : paper_wait_table(predictor))
    if (row.workload == workload && row.policy == policy) return row;
  return std::nullopt;
}

std::optional<PaperSchedRow> paper_sched_cell(PredictorKind predictor,
                                              std::string_view workload, PolicyKind policy) {
  for (const PaperSchedRow& row : paper_sched_table(predictor))
    if (row.workload == workload && row.policy == policy) return row;
  return std::nullopt;
}

}  // namespace rtp
