#include "exp/experiments.hpp"

#include "core/log.hpp"
#include "predict/recording.hpp"
#include "predict/stf.hpp"
#include "sim/simulator.hpp"

namespace rtp {

TemplateSet resolve_stf_templates(const Workload& workload, PolicyKind policy,
                                  const StfSource& source) {
  if (source.fixed) return *source.fixed;
  const bool has_max = compute_stats(workload).max_runtime_coverage > 0.0;
  if (source.ga) {
    log_info("GA template search for ", workload.name(), " / ", to_string(policy));
    const PredictionWorkload eval = PredictionWorkload::from_policy(workload, policy);
    SearchResult found =
        search_templates_ga(eval, workload.fields(), has_max, *source.ga);
    log_info("GA best error ", to_minutes(found.best_error), " min with ",
             found.best.templates.size(), " templates");
    return std::move(found.best);
  }
  return default_template_set(workload.fields(), has_max);
}

namespace {

std::unique_ptr<RuntimeEstimator> build_estimator(const Workload& workload,
                                                  PolicyKind policy, PredictorKind kind,
                                                  const StfSource& stf) {
  if (kind == PredictorKind::Stf) {
    TemplateSet set = resolve_stf_templates(workload, policy, stf);
    return std::make_unique<StfPredictor>(std::move(set));
  }
  return make_runtime_estimator(kind, workload);
}

}  // namespace

WaitPredRow wait_prediction_cell(const Workload& workload, PolicyKind policy,
                                 PredictorKind predictor, const StfSource& stf) {
  auto estimator = build_estimator(workload, policy, predictor, stf);
  const WaitPredictionResult r = run_wait_prediction(workload, policy, *estimator);
  WaitPredRow row;
  row.workload = workload.name();
  row.algorithm = r.policy_name;
  row.mean_error_minutes = r.mean_error_minutes;
  row.percent_of_mean_wait = r.percent_of_mean_wait;
  row.mean_wait_minutes = r.mean_wait_minutes;
  return row;
}

std::vector<WaitPredRow> wait_prediction_table(const std::vector<Workload>& workloads,
                                               const std::vector<PolicyKind>& policies,
                                               PredictorKind predictor,
                                               const StfSource& stf) {
  std::vector<WaitPredRow> rows;
  rows.reserve(workloads.size() * policies.size());
  for (const Workload& workload : workloads)
    for (PolicyKind policy : policies) {
      log_info("wait prediction: ", workload.name(), " / ", to_string(policy), " / ",
               to_string(predictor));
      rows.push_back(wait_prediction_cell(workload, policy, predictor, stf));
    }
  return rows;
}

SchedPerfRow scheduling_cell(const Workload& workload, PolicyKind policy,
                             PredictorKind predictor, const StfSource& stf) {
  auto estimator = build_estimator(workload, policy, predictor, stf);
  RecordingEstimator recording(*estimator);
  auto policy_impl = make_policy(policy);
  const SimResult sim = simulate(workload, *policy_impl, recording);

  SchedPerfRow row;
  row.workload = workload.name();
  row.algorithm = policy_impl->name();
  row.utilization_percent = 100.0 * sim.utilization;
  row.mean_wait_minutes = to_minutes(sim.mean_wait);
  row.runtime_error_minutes = to_minutes(recording.error_stats().mean());
  row.runtime_error_percent = recording.error_percent_of_mean_runtime();
  return row;
}

std::vector<SchedPerfRow> scheduling_table(const std::vector<Workload>& workloads,
                                           const std::vector<PolicyKind>& policies,
                                           PredictorKind predictor,
                                           const StfSource& stf) {
  std::vector<SchedPerfRow> rows;
  rows.reserve(workloads.size() * policies.size());
  for (const Workload& workload : workloads)
    for (PolicyKind policy : policies) {
      log_info("scheduling: ", workload.name(), " / ", to_string(policy), " / ",
               to_string(predictor));
      rows.push_back(scheduling_cell(workload, policy, predictor, stf));
    }
  return rows;
}

std::vector<PolicyKind> wait_prediction_policies(bool include_fcfs) {
  std::vector<PolicyKind> out;
  if (include_fcfs) out.push_back(PolicyKind::Fcfs);
  out.push_back(PolicyKind::Lwf);
  out.push_back(PolicyKind::BackfillConservative);
  return out;
}

std::vector<PolicyKind> scheduling_policies() {
  return {PolicyKind::Lwf, PolicyKind::BackfillConservative};
}

}  // namespace rtp
