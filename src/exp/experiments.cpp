#include "exp/experiments.hpp"

#include "core/log.hpp"
#include "exp/runner.hpp"
#include "predict/recording.hpp"
#include "predict/stf.hpp"
#include "sim/simulator.hpp"

namespace rtp {

TemplateSet resolve_stf_templates(const Workload& workload, PolicyKind policy,
                                  const StfSource& source) {
  if (source.fixed) return *source.fixed;
  const bool has_max = compute_stats(workload).max_runtime_coverage > 0.0;
  if (source.ga) {
    log_info("GA template search for ", workload.name(), " / ", to_string(policy));
    const PredictionWorkload eval = PredictionWorkload::from_policy(workload, policy);
    SearchResult found =
        search_templates_ga(eval, workload.fields(), has_max, *source.ga);
    log_info("GA best error ", to_minutes(found.best_error), " min with ",
             found.best.templates.size(), " templates (", found.evaluations,
             " replays, ", found.memo_hits, " memo hits)");
    return std::move(found.best);
  }
  return default_template_set(workload.fields(), has_max);
}

namespace {

std::unique_ptr<RuntimeEstimator> build_estimator(const Workload& workload,
                                                  PolicyKind policy, PredictorKind kind,
                                                  const StfSource& stf) {
  if (kind == PredictorKind::Stf) {
    TemplateSet set = resolve_stf_templates(workload, policy, stf);
    // Experiment cells only ever feed this predictor jobs owned by one
    // workload, so memoized category keys are safe.
    StfOptions options;
    options.memoize_keys = true;
    return std::make_unique<StfPredictor>(std::move(set), options);
  }
  return make_runtime_estimator(kind, workload);
}

/// One (workload, policy) cell per table entry, in row order.
struct Cell {
  const Workload* workload = nullptr;
  PolicyKind policy = PolicyKind::Fcfs;
};

std::vector<Cell> cross(const std::vector<Workload>& workloads,
                        const std::vector<PolicyKind>& policies) {
  std::vector<Cell> cells;
  cells.reserve(workloads.size() * policies.size());
  for (const Workload& workload : workloads)
    for (PolicyKind policy : policies) cells.push_back({&workload, policy});
  return cells;
}

/// When cells themselves run in parallel, a nested hardware-sized GA pool
/// per cell would oversubscribe the machine; pin the per-cell GA to one
/// thread (its result does not depend on its thread count).
StfSource per_cell_stf(const StfSource& stf, std::size_t runner_threads) {
  StfSource out = stf;
  if (runner_threads > 1 && out.ga && out.ga->threads == 0) out.ga->threads = 1;
  return out;
}

}  // namespace

WaitPredRow wait_prediction_cell(const Workload& workload, PolicyKind policy,
                                 PredictorKind predictor, const StfSource& stf) {
  auto estimator = build_estimator(workload, policy, predictor, stf);
  const WaitPredictionResult r = run_wait_prediction(workload, policy, *estimator);
  WaitPredRow row;
  row.workload = workload.name();
  row.algorithm = r.policy_name;
  row.mean_error_minutes = r.mean_error_minutes;
  row.percent_of_mean_wait = r.percent_of_mean_wait;
  row.mean_wait_minutes = r.mean_wait_minutes;
  return row;
}

std::vector<WaitPredRow> wait_prediction_table(const std::vector<Workload>& workloads,
                                               const std::vector<PolicyKind>& policies,
                                               PredictorKind predictor,
                                               const StfSource& stf, std::size_t threads) {
  const ExperimentRunner runner(threads);
  const std::vector<Cell> cells = cross(workloads, policies);
  const StfSource cell_stf = per_cell_stf(stf, runner.thread_count());
  return runner.map<WaitPredRow>(cells.size(), [&](std::size_t i) {
    log_info("wait prediction: ", cells[i].workload->name(), " / ",
             to_string(cells[i].policy), " / ", to_string(predictor));
    return wait_prediction_cell(*cells[i].workload, cells[i].policy, predictor, cell_stf);
  });
}

SchedPerfRow scheduling_cell(const Workload& workload, PolicyKind policy,
                             PredictorKind predictor, const StfSource& stf) {
  auto estimator = build_estimator(workload, policy, predictor, stf);
  RecordingEstimator recording(*estimator);
  auto policy_impl = make_policy(policy);
  const SimResult sim = simulate(workload, *policy_impl, recording);

  SchedPerfRow row;
  row.workload = workload.name();
  row.algorithm = policy_impl->name();
  row.utilization_percent = 100.0 * sim.utilization;
  row.mean_wait_minutes = to_minutes(sim.mean_wait);
  row.runtime_error_minutes = to_minutes(recording.error_stats().mean());
  row.runtime_error_percent = recording.error_percent_of_mean_runtime();
  return row;
}

std::vector<SchedPerfRow> scheduling_table(const std::vector<Workload>& workloads,
                                           const std::vector<PolicyKind>& policies,
                                           PredictorKind predictor,
                                           const StfSource& stf, std::size_t threads) {
  const ExperimentRunner runner(threads);
  const std::vector<Cell> cells = cross(workloads, policies);
  const StfSource cell_stf = per_cell_stf(stf, runner.thread_count());
  return runner.map<SchedPerfRow>(cells.size(), [&](std::size_t i) {
    log_info("scheduling: ", cells[i].workload->name(), " / ", to_string(cells[i].policy),
             " / ", to_string(predictor));
    return scheduling_cell(*cells[i].workload, cells[i].policy, predictor, cell_stf);
  });
}

std::vector<PolicyKind> wait_prediction_policies(bool include_fcfs) {
  std::vector<PolicyKind> out;
  if (include_fcfs) out.push_back(PolicyKind::Fcfs);
  out.push_back(PolicyKind::Lwf);
  out.push_back(PolicyKind::BackfillConservative);
  return out;
}

std::vector<PolicyKind> scheduling_policies() {
  return {PolicyKind::Lwf, PolicyKind::BackfillConservative};
}

}  // namespace rtp
