// The paper's published results (Tables 4-15) as data.
//
// Used by the report generator to print paper-vs-measured side by side and
// by tests that assert the *shape* of the reproduction (orderings, who
// wins) rather than absolute numbers, which depend on the original
// non-redistributable traces.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "predict/factory.hpp"
#include "sched/policy.hpp"

namespace rtp {

/// One row of a wait-time prediction table (paper Tables 4-9).
struct PaperWaitRow {
  std::string_view workload;       // "ANL" / "CTC" / "SDSC95" / "SDSC96"
  PolicyKind policy;
  double mean_error_minutes;
  double percent_of_mean_wait;
};

/// One row of a scheduling-performance table (paper Tables 10-15).
struct PaperSchedRow {
  std::string_view workload;
  PolicyKind policy;
  double utilization_percent;
  double mean_wait_minutes;
};

/// Paper table of wait-time prediction results for `predictor`, or empty
/// when the paper has no such table (it has one for every predictor).
/// Table numbers: actual=4, max=5, stf=6, gibbons=7, downey-avg=8,
/// downey-med=9.
const std::vector<PaperWaitRow>& paper_wait_table(PredictorKind predictor);

/// Paper table of scheduling results for `predictor`.  Table numbers:
/// actual=10, max=11, stf=12, gibbons=13, downey-avg=14, downey-med=15.
const std::vector<PaperSchedRow>& paper_sched_table(PredictorKind predictor);

/// Paper table number for the given experiment family + predictor.
int paper_wait_table_number(PredictorKind predictor);
int paper_sched_table_number(PredictorKind predictor);

/// Look up one cell; nullopt when the paper does not report it (e.g. FCFS
/// in Table 4).
std::optional<PaperWaitRow> paper_wait_cell(PredictorKind predictor,
                                            std::string_view workload, PolicyKind policy);
std::optional<PaperSchedRow> paper_sched_cell(PredictorKind predictor,
                                              std::string_view workload, PolicyKind policy);

}  // namespace rtp
