// Experiment harness: one entry point per class of paper table.
//
//   Tables 4-9   wait_prediction_table()  — wait-time prediction error per
//                (workload, policy) for one run-time predictor.
//   Tables 10-15 scheduling_table()       — utilization and mean wait per
//                (workload, policy) when the *scheduler itself* runs on one
//                run-time predictor.
//   §4 text      compressed-load comparison — scheduling_table over SDSC
//                workloads with interarrival compressed 2x.
//
// The STF predictor's template set comes from an StfSource: a fixed set, a
// hand-built default, or a genetic-algorithm search run per
// (workload, policy) pair exactly as the paper tunes per pair.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "predict/factory.hpp"
#include "search/ga.hpp"
#include "sim/metrics.hpp"
#include "waitpred/waitpred.hpp"
#include "workload/workload.hpp"

namespace rtp {

/// Where STF template sets come from.
struct StfSource {
  /// Explicit template set (wins when set).
  std::optional<TemplateSet> fixed;
  /// Run the GA per (workload, policy) with these options.
  std::optional<GaOptions> ga;
  // Neither set: hand-built default_template_set for the workload's fields.
};

/// Resolve the template set for one (workload, policy) pair.
TemplateSet resolve_stf_templates(const Workload& workload, PolicyKind policy,
                                  const StfSource& source);

// ---------------------------------------------------------------------------
// Wait-time prediction experiments (Tables 4-9).

struct WaitPredRow {
  std::string workload;
  std::string algorithm;
  double mean_error_minutes = 0.0;
  double percent_of_mean_wait = 0.0;
  double mean_wait_minutes = 0.0;
};

/// One row per (workload, policy).  The live scheduler runs on maximum run
/// times (the paper's setup); `predictor` drives only the shadow
/// simulation.  Cells fan out across `threads` workers (0 = hardware
/// concurrency, 1 = serial) via ExperimentRunner; row order and content are
/// thread-count independent.
std::vector<WaitPredRow> wait_prediction_table(const std::vector<Workload>& workloads,
                                               const std::vector<PolicyKind>& policies,
                                               PredictorKind predictor,
                                               const StfSource& stf = {},
                                               std::size_t threads = 1);

// ---------------------------------------------------------------------------
// Scheduler-performance experiments (Tables 10-15).

struct SchedPerfRow {
  std::string workload;
  std::string algorithm;
  double utilization_percent = 0.0;
  double mean_wait_minutes = 0.0;
  // Run-time prediction quality of the scheduler's estimator (paper §4
  // discussion): mean |error| in minutes and as a percent of mean run time.
  double runtime_error_minutes = 0.0;
  double runtime_error_percent = 0.0;
};

/// One row per (workload, policy); the scheduler runs on `predictor`.
/// `threads` as in wait_prediction_table.
std::vector<SchedPerfRow> scheduling_table(const std::vector<Workload>& workloads,
                                           const std::vector<PolicyKind>& policies,
                                           PredictorKind predictor,
                                           const StfSource& stf = {},
                                           std::size_t threads = 1);

/// Single-cell variants for custom experiments.
WaitPredRow wait_prediction_cell(const Workload& workload, PolicyKind policy,
                                 PredictorKind predictor, const StfSource& stf = {});
SchedPerfRow scheduling_cell(const Workload& workload, PolicyKind policy,
                             PredictorKind predictor, const StfSource& stf = {});

/// Policies the paper uses for each experiment family.
std::vector<PolicyKind> wait_prediction_policies(bool include_fcfs);
std::vector<PolicyKind> scheduling_policies();

}  // namespace rtp
