// Parallel experiment runner: the shared substrate the table benches (and
// any future sweep) fan their experiment cells across.
//
// A "cell" is one independent (workload x predictor x policy x scenario)
// computation.  The runner executes cells on the process-wide ThreadPool
// semantics of core/thread_pool and collects results in *submission order*,
// so the emitted tables are byte-identical regardless of thread count or
// completion order.  Exceptions thrown by a cell are rethrown on the
// caller's thread.
//
// Determinism contract: a cell must depend only on its own inputs (shared
// state may be read, never written), and every cell body must be safe to
// run concurrently with every other.  Under that contract,
// run(1 thread) == run(N threads) bit for bit.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/thread_pool.hpp"

namespace rtp {

class ExperimentRunner {
 public:
  /// `threads == 0` selects hardware concurrency; 1 runs cells serially
  /// inline without spawning workers.
  explicit ExperimentRunner(std::size_t threads = 0);
  ~ExperimentRunner();

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  /// Worker count (1 when serial).
  std::size_t thread_count() const;

  /// Run body(i) for i in [0, count); the first exception is rethrown on
  /// the calling thread.
  void for_each(std::size_t count, const std::function<void(std::size_t)>& body) const;

  /// Run fn(i) for i in [0, count) and return the results indexed by
  /// submission order, independent of completion order.
  template <typename T>
  std::vector<T> map(std::size_t count, const std::function<T(std::size_t)>& fn) const {
    std::vector<T> out(count);
    for_each(count, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  std::unique_ptr<ThreadPool> pool_;  // null when serial
};

}  // namespace rtp
