#include "core/time.hpp"

#include <cstdio>

namespace rtp {

std::string format_duration(Seconds s) {
  if (s < 0) return "n/a";
  const long long total = static_cast<long long>(s + 0.5);
  const long long d = total / 86400, h = (total % 86400) / 3600;
  const long long m = (total % 3600) / 60, sec = total % 60;
  char buf[64];
  if (d > 0)
    std::snprintf(buf, sizeof buf, "%lldd%02lldh%02lldm", d, h, m);
  else if (h > 0)
    std::snprintf(buf, sizeof buf, "%lldh%02lldm", h, m);
  else if (m > 0)
    std::snprintf(buf, sizeof buf, "%lldm%02llds", m, sec);
  else
    std::snprintf(buf, sizeof buf, "%llds", sec);
  return buf;
}

}  // namespace rtp
