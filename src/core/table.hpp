// Fixed-width console tables and CSV output.
//
// Every bench binary reproduces one of the paper's tables; TablePrinter
// renders rows with aligned columns so the output reads like the paper, and
// CsvWriter emits the same data machine-readably.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rtp {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Render the table (header, separator, rows) to `out`.
  void print(std::ostream& out) const;

  /// Render as CSV (header row + data rows) to `out`.
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quote a CSV field per RFC 4180 when it contains a comma, quote or newline.
std::string csv_escape(const std::string& field);

}  // namespace rtp
