// A small fixed-size thread pool with a parallel_for helper.
//
// Used by the genetic-algorithm search to evaluate the fitness of a
// generation's individuals concurrently.  On a single-core host the pool
// degrades gracefully to near-serial execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rtp {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; tasks must not throw (exceptions terminate).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Run body(i) for i in [0, count) across the pool and wait for completion.
/// `body` must be safe to invoke concurrently for distinct indices.  `body`
/// may throw: the first exception captured is rethrown on the caller's
/// thread once every task has drained; indices scheduled after the failure
/// are skipped (their bodies never run).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

}  // namespace rtp
