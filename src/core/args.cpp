#include "core/args.hpp"

#include <cstdio>

#include "core/error.hpp"
#include "core/strings.hpp"

namespace rtp {

ArgParser::ArgParser(int argc, const char* const* argv) {
  RTP_CHECK(argc >= 1, "argc must be >= 1");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) raw_.emplace_back(argv[i]);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  RTP_CHECK(!specs_.count(name), "duplicate option --" + name);
  specs_[name] = Spec{help, /*is_flag=*/true, "false", false};
  order_.push_back(name);
}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  RTP_CHECK(!specs_.count(name), "duplicate option --" + name);
  specs_[name] = Spec{help, /*is_flag=*/false, default_value, false};
  order_.push_back(name);
}

bool ArgParser::parse() {
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    const std::string& arg = raw_[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      std::printf("usage: %s [options]\n", program_.c_str());
      for (const auto& name : order_) {
        const Spec& s = specs_.at(name);
        if (s.is_flag)
          std::printf("  --%-24s %s\n", name.c_str(), s.help.c_str());
        else
          std::printf("  --%-24s %s (default: %s)\n", (name + " <v>").c_str(), s.help.c_str(),
                      s.value.c_str());
      }
      return false;
    }
    std::string name = body, value;
    bool has_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    }
    auto it = specs_.find(name);
    if (it == specs_.end()) fail("unknown option --" + name + " (try --help)");
    Spec& spec = it->second;
    if (spec.is_flag) {
      RTP_CHECK(!has_value || value == "true" || value == "false",
                "flag --" + name + " takes no value");
      spec.value = has_value ? value : "true";
    } else {
      if (!has_value) {
        RTP_CHECK(i + 1 < raw_.size(), "option --" + name + " needs a value");
        value = raw_[++i];
      }
      spec.value = value;
    }
    spec.seen = true;
  }
  return true;
}

const ArgParser::Spec& ArgParser::lookup(const std::string& name) const {
  auto it = specs_.find(name);
  if (it == specs_.end()) fail("option --" + name + " was never declared");
  return it->second;
}

bool ArgParser::flag(const std::string& name) const { return lookup(name).value == "true"; }

std::string ArgParser::str(const std::string& name) const { return lookup(name).value; }

long long ArgParser::integer(const std::string& name) const {
  return parse_int(lookup(name).value, "option --" + name);
}

double ArgParser::real(const std::string& name) const {
  return parse_double(lookup(name).value, "option --" + name);
}

}  // namespace rtp
