// Leveled logging to stderr.
//
// The simulator and search code log progress at Info; Debug is compiled in
// but off by default.  Logging is deliberately tiny — benches parse nothing
// from stderr, all results go to stdout through TablePrinter.
#pragma once

#include <sstream>
#include <string>

namespace rtp {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line ("[level] message") to stderr if `level` passes the filter.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Parts>
std::string concat(const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}
}  // namespace detail

template <typename... Parts>
void log_debug(const Parts&... parts) {
  if (log_level() <= LogLevel::Debug) log_message(LogLevel::Debug, detail::concat(parts...));
}
template <typename... Parts>
void log_info(const Parts&... parts) {
  if (log_level() <= LogLevel::Info) log_message(LogLevel::Info, detail::concat(parts...));
}
template <typename... Parts>
void log_warn(const Parts&... parts) {
  if (log_level() <= LogLevel::Warn) log_message(LogLevel::Warn, detail::concat(parts...));
}
template <typename... Parts>
void log_error(const Parts&... parts) {
  if (log_level() <= LogLevel::Error) log_message(LogLevel::Error, detail::concat(parts...));
}

}  // namespace rtp
