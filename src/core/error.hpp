// Error handling: a single exception type plus check macros.
//
// Following the C++ Core Guidelines (E.2, E.14) errors that callers can
// reasonably encounter (bad trace files, invalid configuration) throw
// `rtp::Error`; internal invariant violations use RTP_ASSERT which also
// throws so tests can observe them.  Both macros expand to a single
// `do { } while (0)` statement so they compose with unbraced if/else.
#pragma once

#include <stdexcept>
#include <string>

namespace rtp {

/// Exception thrown for all recoverable library errors.  Carries an
/// optional source location ("file.cpp:123") separate from the message so
/// callers can log or strip it; when present it is appended to what().
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, std::string location = {})
      : std::runtime_error(location.empty() ? what : what + " [" + location + "]"),
        location_(std::move(location)) {}

  /// Where the error was raised; empty when unknown.
  const std::string& location() const { return location_; }

 private:
  std::string location_;
};

[[noreturn]] inline void fail(const std::string& message) { throw Error(message); }

[[noreturn]] inline void fail_at(const char* file, long line, const std::string& message) {
  throw Error(message, std::string(file) + ":" + std::to_string(line));
}

}  // namespace rtp

/// Throw rtp::Error with `msg` when `cond` is false.  For conditions caused
/// by caller input (file contents, configuration values).
#define RTP_CHECK(cond, msg)                                          \
  do {                                                                \
    if (!(cond))                                                      \
      ::rtp::fail_at(__FILE__, __LINE__,                              \
                     std::string("check failed: ") + (msg));          \
  } while (0)

/// Internal invariant; failure indicates a bug in this library.
#define RTP_ASSERT(cond)                                                        \
  do {                                                                          \
    if (!(cond))                                                                \
      ::rtp::fail_at(__FILE__, __LINE__,                                        \
                     std::string("internal invariant violated: " #cond));       \
  } while (0)
