// Error handling: a single exception type plus check macros.
//
// Following the C++ Core Guidelines (E.2, E.14) errors that callers can
// reasonably encounter (bad trace files, invalid configuration) throw
// `rtp::Error`; internal invariant violations use RTP_ASSERT which also
// throws so tests can observe them.
#pragma once

#include <stdexcept>
#include <string>

namespace rtp {

/// Exception thrown for all recoverable library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail(const std::string& message) { throw Error(message); }

}  // namespace rtp

/// Throw rtp::Error with `msg` when `cond` is false.  For conditions caused
/// by caller input (file contents, configuration values).
#define RTP_CHECK(cond, msg)                                        \
  do {                                                              \
    if (!(cond)) ::rtp::fail(std::string("check failed: ") + (msg)); \
  } while (0)

/// Internal invariant; failure indicates a bug in this library.
#define RTP_ASSERT(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::rtp::fail(std::string("internal invariant violated: " #cond " at ") + \
                  __FILE__ + ":" + std::to_string(__LINE__));                \
  } while (0)
