// Simulation time primitives.
//
// All simulation times are expressed in seconds as `Seconds` (double).  The
// paper reports run times and wait times in minutes; helpers here convert in
// both directions.  A plain double keeps arithmetic in the schedulers and the
// event engine simple while the named constructors keep call sites readable.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace rtp {

/// Simulation time / duration in seconds.
using Seconds = double;

/// Sentinel for "not yet known" times (e.g. a job that has not started).
inline constexpr Seconds kNoTime = -1.0;

/// Largest representable time; used as "never" in availability profiles.
inline constexpr Seconds kTimeInfinity = std::numeric_limits<double>::infinity();

constexpr Seconds seconds(double s) { return s; }
constexpr Seconds minutes(double m) { return m * 60.0; }
constexpr Seconds hours(double h) { return h * 3600.0; }
constexpr Seconds days(double d) { return d * 86400.0; }

constexpr double to_minutes(Seconds s) { return s / 60.0; }
constexpr double to_hours(Seconds s) { return s / 3600.0; }
constexpr double to_days(Seconds s) { return s / 86400.0; }

/// True when two times are equal within a scheduling tolerance (1 ms).
inline bool time_eq(Seconds a, Seconds b) { return std::fabs(a - b) < 1e-3; }

/// True when two doubles carry identical bit patterns — cache-key equality,
/// not numeric equality: it distinguishes +0.0 from -0.0 and matches a NaN
/// to itself, so a reused cached value is guaranteed to have been computed
/// from exactly these inputs.
inline bool time_bits_eq(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Render a duration as a compact human-readable string, e.g. "2h03m".
std::string format_duration(Seconds s);

}  // namespace rtp
