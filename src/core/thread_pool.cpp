#include "core/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace rtp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::scoped_lock lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::scoped_lock lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  // submit() requires non-throwing tasks, so the wrapper captures the first
  // exception here and parallel_for rethrows it on the calling thread.
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (std::size_t i = 0; i < count; ++i)
    pool.submit([&, i] {
      if (failed.load(std::memory_order_acquire)) return;
      try {
        body(i);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_release);
      }
    });
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rtp
