// Deterministic random number generation.
//
// Every stochastic component in the library (synthetic workload generators,
// the genetic-algorithm search) draws from an explicitly seeded `Rng` so that
// experiments are reproducible bit-for-bit across runs and machines.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace rtp {

/// Thin wrapper over std::mt19937_64 with the distribution helpers the
/// library needs.  Copyable; copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Exponential variate with the given mean (mean = 1/lambda).
  double exponential(double mean);

  /// Lognormal variate: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma);

  /// Normal variate N(mean, stddev^2).
  double normal(double mean, double stddev);

  /// Pareto variate with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// All weights must be non-negative and at least one positive.
  std::size_t weighted_index(std::span<const double> weights);

  /// Derive a new independent generator; advances this one.
  Rng fork();

  /// Shuffle a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rtp
