// Small string utilities used by the trace parsers and table writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rtp {

/// Remove leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on a single delimiter character; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Split on arbitrary runs of whitespace; drops empty fields.
std::vector<std::string_view> split_whitespace(std::string_view s);

/// True when `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// Parse helpers that throw rtp::Error with `context` on malformed input.
double parse_double(std::string_view s, std::string_view context);
long long parse_int(std::string_view s, std::string_view context);

/// printf-style number formatting used by the table printers.
std::string format_double(double value, int decimals);

/// Exact (bit-faithful) double encoding: the IEEE bit pattern as 16
/// lower-case hex digits.  Round-trips every value, including NaNs and
/// values decimal formatting would round.
std::string double_bits_hex(double value);

/// Inverse of double_bits_hex; throws rtp::Error with `context` on
/// malformed input (wrong length, non-hex digits).
double parse_double_bits_hex(std::string_view s, std::string_view context);

}  // namespace rtp
