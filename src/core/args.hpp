// Minimal command-line argument parser for the bench and example binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean flags
// (`--verbose`).  Unknown options are an error so typos surface immediately.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rtp {

class ArgParser {
 public:
  /// `argv`-style input; argv[0] is skipped.
  ArgParser(int argc, const char* const* argv);

  /// Declare options.  Declaration order drives --help output.
  void add_flag(const std::string& name, const std::string& help);
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parse; throws rtp::Error on unknown or malformed options.  Returns false
  /// when --help was requested (help text printed to stdout).
  bool parse();

  bool flag(const std::string& name) const;
  std::string str(const std::string& name) const;
  long long integer(const std::string& name) const;
  double real(const std::string& name) const;

  /// Positional (non-option) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  struct Spec {
    std::string help;
    bool is_flag = false;
    std::string value;  // default, replaced on parse
    bool seen = false;
  };

  const Spec& lookup(const std::string& name) const;

  std::vector<std::string> raw_;
  std::map<std::string, Spec> specs_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
  std::string program_;
};

}  // namespace rtp
