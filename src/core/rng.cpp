#include "core/rng.hpp"

#include <algorithm>
#include <cmath>

namespace rtp {

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  RTP_CHECK(lo <= hi, "uniform: lo > hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RTP_CHECK(lo <= hi, "uniform_int: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  RTP_CHECK(mean > 0.0, "exponential: mean must be positive");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::pareto(double xm, double alpha) {
  RTP_CHECK(xm > 0.0 && alpha > 0.0, "pareto: xm and alpha must be positive");
  const double u = 1.0 - uniform();  // in (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  RTP_CHECK(!weights.empty(), "weighted_index: empty weights");
  double total = 0.0;
  for (double w : weights) {
    RTP_CHECK(w >= 0.0, "weighted_index: negative weight");
    total += w;
  }
  RTP_CHECK(total > 0.0, "weighted_index: all weights zero");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // guard against FP rounding at the tail
}

Rng Rng::fork() { return Rng(engine_()); }

}  // namespace rtp
