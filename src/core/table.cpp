#include "core/table.hpp"

#include <algorithm>
#include <ostream>

#include "core/error.hpp"

namespace rtp {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RTP_CHECK(!headers_.empty(), "table must have at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  RTP_CHECK(cells.size() == headers_.size(), "row width does not match header count");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      out << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void TablePrinter::print_csv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      out << csv_escape(row[c]) << (c + 1 == row.size() ? "\n" : ",");
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace rtp
