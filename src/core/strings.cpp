#include "core/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "core/error.hpp"

namespace rtp {

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  std::size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_whitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

double parse_double(std::string_view s, std::string_view context) {
  s = trim(s);
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size())
    fail("malformed number '" + std::string(s) + "' in " + std::string(context));
  return value;
}

long long parse_int(std::string_view s, std::string_view context) {
  s = trim(s);
  long long value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size())
    fail("malformed integer '" + std::string(s) + "' in " + std::string(context));
  return value;
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string double_bits_hex(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(bits));
  return std::string(buf);
}

double parse_double_bits_hex(std::string_view s, std::string_view context) {
  if (s.size() != 16)
    fail("double bits must be 16 hex digits in " + std::string(context) + ", got '" +
         std::string(s) + "'");
  std::uint64_t bits = 0;
  for (const char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      fail("malformed double bits '" + std::string(s) + "' in " + std::string(context));
    }
    bits = (bits << 4) | static_cast<std::uint64_t>(digit);
  }
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace rtp
