#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace rtp {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void validate(const FaultConfig& config) {
  RTP_CHECK(config.job_failure_rate >= 0.0 && config.job_failure_rate <= 1.0,
            "FaultConfig: job_failure_rate must be in [0, 1]");
  RTP_CHECK(config.outages_per_day >= 0.0, "FaultConfig: negative outage rate");
  RTP_CHECK(config.outage_nodes >= 1 && config.burst_nodes >= 1,
            "FaultConfig: outages must remove at least one node");
  RTP_CHECK(config.max_down_fraction > 0.0 && config.max_down_fraction < 1.0,
            "FaultConfig: max_down_fraction must be in (0, 1)");
  RTP_CHECK(config.retry.max_attempts >= 1, "RetryPolicy: max_attempts must be >= 1");
  RTP_CHECK(config.retry.checkpoint_fraction >= 0.0 && config.retry.checkpoint_fraction <= 1.0,
            "RetryPolicy: checkpoint_fraction must be in [0, 1]");
  RTP_CHECK(config.retry.jitter >= 0.0 && config.retry.jitter < 1.0,
            "RetryPolicy: jitter must be in [0, 1)");
  RTP_CHECK(config.retry.backoff_multiplier >= 1.0,
            "RetryPolicy: backoff_multiplier must be >= 1");
}

}  // namespace

FaultModel::FaultModel(FaultConfig config, int machine_nodes, Seconds horizon)
    : config_(config) {
  validate(config_);
  RTP_CHECK(machine_nodes >= 1, "FaultModel: machine_nodes must be >= 1");
  if (config_.outages_per_day > 0.0) generate_outages(machine_nodes, horizon);
}

FaultModel::FaultModel(FaultConfig config, const Workload& workload)
    : FaultModel(config, std::max(1, workload.machine_nodes()), [&] {
        // Horizon: last submission plus drain slack so outages keep firing
        // while the queue empties (retries can extend well past the last
        // arrival).
        Seconds last_submit = 0.0;
        double runtime_sum = 0.0;
        for (const Job& j : workload.jobs()) {
          last_submit = std::max(last_submit, j.submit);
          runtime_sum += j.runtime;
        }
        const Seconds mean_runtime =
            workload.empty() ? 0.0 : runtime_sum / static_cast<double>(workload.size());
        return last_submit + std::max(days(1), 16.0 * mean_runtime);
      }()) {}

void FaultModel::generate_outages(int machine_nodes, Seconds horizon) {
  const int max_down =
      std::max(0, static_cast<int>(config_.max_down_fraction * machine_nodes));
  if (max_down == 0) return;  // machine too small to take anything down

  Rng rng(splitmix64(config_.seed ^ 0x0f4a6e50ULL));
  const Seconds mean_gap = days(1) / config_.outages_per_day;
  Seconds t = 0.0;
  while (true) {
    t += rng.exponential(mean_gap);
    if (t >= horizon) break;
    const bool burst = rng.chance(config_.burst_probability);
    const Seconds duration = std::max<Seconds>(1.0, rng.exponential(config_.outage_duration_mean));
    int nodes = std::min(burst ? config_.burst_nodes : config_.outage_nodes, max_down);

    // Respect the concurrent-down cap against already-scheduled outages so
    // the simulator can always satisfy take_nodes_down by evicting jobs.
    int down_now = 0;
    for (const NodeOutage& o : outages_)
      if (o.down <= t && t < o.up) down_now += o.nodes;
    nodes = std::min(nodes, max_down - down_now);
    if (nodes <= 0) continue;  // draws above keep the stream position stable

    outages_.push_back({t, t + duration, nodes});
  }
}

double FaultModel::hash_uniform(std::uint64_t stream, JobId id, int attempt) const {
  std::uint64_t h = splitmix64(config_.seed ^ (stream * 0x9e3779b97f4a7c15ULL));
  h = splitmix64(h ^ static_cast<std::uint64_t>(id));
  h = splitmix64(h ^ static_cast<std::uint64_t>(attempt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

AttemptOutcome FaultModel::attempt_outcome(const Job& job, int attempt) const {
  AttemptOutcome out;
  if (config_.job_failure_rate <= 0.0) return out;
  out.fails = hash_uniform(1, job.id, attempt) < config_.job_failure_rate;
  if (out.fails) {
    // Die strictly inside the run: [5%, 95%] of the attempt's duration.
    out.fail_fraction = 0.05 + 0.90 * hash_uniform(2, job.id, attempt);
  }
  return out;
}

Seconds FaultModel::resubmit_delay(const Job& job, int failed_attempt) const {
  const RetryPolicy& retry = config_.retry;
  Seconds delay = retry.backoff_base *
                  std::pow(retry.backoff_multiplier, std::max(0, failed_attempt - 1));
  delay = std::min(delay, retry.backoff_cap);
  if (retry.jitter > 0.0) {
    const double u = hash_uniform(3, job.id, failed_attempt);  // [0, 1)
    delay *= 1.0 + retry.jitter * (2.0 * u - 1.0);
  }
  return std::max<Seconds>(1.0, delay);
}

}  // namespace rtp
