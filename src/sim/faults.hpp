// Fault injection for the simulator: node outages, per-job failure
// hazards, and the retry policy that governs resubmission.
//
// Everything here is deterministic in the config seed.  Two mechanisms
// matter for that:
//
//  * Node outages are a Poisson process materialized *up front* over a
//    horizon derived from the workload, so the outage timeline is fixed
//    before the simulation starts and identical across schedulers.
//  * Per-attempt decisions (does attempt k of job j fail, where in the run
//    does it die, how much backoff jitter) are *counter-based*: a splitmix64
//    hash of (seed, job id, attempt) rather than draws from a shared stream.
//    The outcome of an attempt therefore does not depend on the order in
//    which the scheduler happens to start jobs — a prerequisite for
//    comparing policies under an identical fault sequence.
//
// This subsystem is an extension beyond the paper (whose traces are clean);
// with the model disabled the simulator's behavior is bit-for-bit the
// clean-trace behavior.
#pragma once

#include <cstdint>
#include <vector>

#include "core/time.hpp"
#include "workload/workload.hpp"

namespace rtp {

/// How failed jobs are resubmitted.
struct RetryPolicy {
  /// Total attempts a job may consume, including the first; once exhausted
  /// the job is abandoned.  Must be >= 1.
  int max_attempts = 3;

  /// Delay before the second attempt; attempt k waits
  /// base * multiplier^(k-2), capped at `backoff_cap`.
  Seconds backoff_base = minutes(1);
  double backoff_multiplier = 2.0;
  Seconds backoff_cap = hours(4);

  /// Uniform jitter fraction on the delay (0.25 = +/-25%), deterministic
  /// per (job, attempt).
  double jitter = 0.25;

  /// Fraction of a failed attempt's completed work a retry keeps
  /// (checkpointing).  0 = every retry starts from scratch; 1 = perfect
  /// checkpoints, no work is ever redone.
  double checkpoint_fraction = 0.0;
};

struct FaultConfig {
  std::uint64_t seed = 1;

  /// Probability that any given attempt of a job dies before completing.
  double job_failure_rate = 0.0;

  /// Node outage Poisson rate per simulated day; 0 disables outages.
  double outages_per_day = 0.0;
  /// Mean repair time (outage durations are exponential).
  Seconds outage_duration_mean = hours(2);
  /// Nodes an ordinary outage removes.
  int outage_nodes = 1;
  /// Chance an outage is a correlated burst (rack / switch failure) ...
  double burst_probability = 0.15;
  /// ... which removes this many nodes at once.
  int burst_nodes = 8;
  /// Cap on the fraction of the machine that may be down concurrently, so
  /// the simulation can always make progress.
  double max_down_fraction = 0.5;

  RetryPolicy retry;

  bool enabled() const { return job_failure_rate > 0.0 || outages_per_day > 0.0; }
};

/// One node outage on the pre-generated timeline: `nodes` leave service at
/// `down` and return at `up`.
struct NodeOutage {
  Seconds down = 0.0;
  Seconds up = 0.0;
  int nodes = 0;
};

/// Fate of one attempt, decided the moment it starts.
struct AttemptOutcome {
  bool fails = false;
  /// Fraction of the attempt's duration at which it dies (only meaningful
  /// when `fails`); kept inside (0, 1) so failures strictly follow starts.
  double fail_fraction = 1.0;
};

class FaultModel {
 public:
  /// Disabled model: no outages, no hazards.
  FaultModel() = default;

  /// Deterministic in (config, machine_nodes, horizon): the outage
  /// timeline covers [0, horizon).
  FaultModel(FaultConfig config, int machine_nodes, Seconds horizon);

  /// Convenience: the horizon is derived from the workload (last submit
  /// plus generous drain slack).
  FaultModel(FaultConfig config, const Workload& workload);

  bool enabled() const { return config_.enabled(); }
  const FaultConfig& config() const { return config_; }
  const RetryPolicy& retry() const { return config_.retry; }

  /// Pre-generated outage timeline, ordered by `down` time.
  const std::vector<NodeOutage>& outages() const { return outages_; }

  /// Counter-based fate of attempt `attempt` (1-based) of `job`.
  AttemptOutcome attempt_outcome(const Job& job, int attempt) const;

  /// Backoff before the attempt after `failed_attempt` (1-based) is
  /// resubmitted, jitter included.  Always > 0.
  Seconds resubmit_delay(const Job& job, int failed_attempt) const;

 private:
  /// Uniform in [0, 1), keyed by (seed, stream, job id, attempt).
  double hash_uniform(std::uint64_t stream, JobId id, int attempt) const;

  void generate_outages(int machine_nodes, Seconds horizon);

  FaultConfig config_;
  std::vector<NodeOutage> outages_;
};

}  // namespace rtp
