#include "sim/simulator.hpp"

#include <algorithm>
#include <queue>

#include "core/error.hpp"

namespace rtp {
namespace {

// Internal event kinds, in processing order at equal times: completions
// and failures free nodes first, repairs restore capacity before the next
// outage claims it, and resubmissions enqueue last so they see the freed
// machine.  A clean run only ever creates Finish events, which then sort
// exactly like the original completion heap (time, then id).
enum class EvKind : int { Finish = 0, Fail = 1, NodeUp = 2, NodeDown = 3, Resubmit = 4 };

struct Event {
  Seconds time;
  EvKind kind;
  JobId id;     // job for Finish/Fail/Resubmit; outage index for node events
  int nodes;    // node events only
  int attempt;  // Finish/Fail: which attempt scheduled this event

  // Min-heap by (time, kind, id) for determinism.
  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    return id > other.id;
  }
};

class Simulation {
 public:
  Simulation(const Workload& workload, const SchedulerPolicy& policy,
             RuntimeEstimator& estimator, SimObserver* observer, const SimOptions& options)
      : workload_(workload),
        policy_(policy),
        estimator_(estimator),
        observer_(observer),
        options_(options),
        faults_(options.faults && options.faults->enabled() ? options.faults : nullptr),
        state_(workload.machine_nodes()) {}

  SimResult run() {
    SimResult result;
    result.workload_name = workload_.name();
    result.policy_name = policy_.name();
    result.estimator_name = estimator_.name();
    result.start_times.assign(workload_.size(), kNoTime);
    result.waits.assign(workload_.size(), 0.0);
    result.attempts.assign(workload_.size(), 0);

    attempt_start_.assign(workload_.size(), kNoTime);
    running_attempt_.assign(workload_.size(), -1);
    if (faults_) {
      remaining_.reserve(workload_.size());
      for (const Job& j : workload_.jobs()) remaining_.push_back(j.runtime);
      kept_credit_.assign(workload_.size(), 0.0);
      for (std::size_t i = 0; i < faults_->outages().size(); ++i) {
        const NodeOutage& o = faults_->outages()[i];
        events_.push({o.down, EvKind::NodeDown, static_cast<JobId>(i), o.nodes, 0});
        events_.push({o.up, EvKind::NodeUp, static_cast<JobId>(i), o.nodes, 0});
      }
    }

    const auto& jobs = workload_.jobs();
    std::size_t next_arrival = 0;
    Seconds last_completion = 0.0;

    while (next_arrival < jobs.size() || !events_.empty()) {
      const bool have_arrival = next_arrival < jobs.size();
      const bool have_event = !events_.empty();
      const Seconds ta = have_arrival ? jobs[next_arrival].submit : kTimeInfinity;
      const Seconds te = have_event ? events_.top().time : kTimeInfinity;

      if (te <= ta) {
        // Internal event(s) first; drain everything at this instant, then
        // run one scheduling pass over the settled state.
        const Seconds now = te;
        while (!events_.empty() && events_.top().time <= now) {
          const Event ev = events_.top();
          events_.pop();
          handle_event(ev, now, result, last_completion);
        }
        schedule_pass(now, result);
      } else {
        const Seconds now = ta;
        const Job& job = jobs[next_arrival++];
        state_.enqueue(job, now, estimator_.estimate(job, 0.0));
        refresh_estimates(now);
        if (observer_) observer_->on_submit(now, state_, job);
        schedule_pass(now, result);
      }
    }

    const Seconds first_submit = jobs.empty() ? 0.0 : jobs.front().submit;
    result.wasted_work = wasted_work_;
    finalize_metrics(result, total_work_, workload_.machine_nodes(), first_submit,
                     last_completion);
    return result;
  }

 private:
  void handle_event(const Event& ev, Seconds now, SimResult& result,
                    Seconds& last_completion) {
    switch (ev.kind) {
      case EvKind::Finish: {
        if (running_attempt_[ev.id] != ev.attempt) return;  // stale: attempt was killed
        running_attempt_[ev.id] = -1;
        state_.finish_job(ev.id);
        const Job& job = workload_.job(ev.id);
        estimator_.job_completed(job, now);
        if (observer_) observer_->on_finish(job, now);
        total_work_ += job.work();
        ++result.completed;
        last_completion = std::max(last_completion, now);
        break;
      }
      case EvKind::Fail: {
        if (running_attempt_[ev.id] != ev.attempt) return;  // stale
        fail_attempt(ev.id, now, result);
        break;
      }
      case EvKind::NodeUp: {
        state_.bring_nodes_up(ev.nodes);
        if (observer_) observer_->on_node_up(now, state_.down_nodes());
        break;
      }
      case EvKind::NodeDown: {
        // Node loss kills whatever runs on the lost nodes.  Victims are the
        // most recently started jobs (ties by id, descending) until enough
        // capacity is free — deterministic, and it biases the damage toward
        // backfilled jobs rather than long-running heads.
        while (state_.free_nodes() < ev.nodes) {
          const SchedJob* victim = nullptr;
          for (const SchedJob& sj : state_.running()) {
            if (!victim || sj.start > victim->start ||
                (sj.start == victim->start && sj.id() > victim->id()))
              victim = &sj;
          }
          RTP_ASSERT(victim != nullptr);
          fail_attempt(victim->id(), now, result);
        }
        state_.take_nodes_down(ev.nodes);
        ++result.node_outages;
        if (observer_) observer_->on_node_down(now, state_.down_nodes());
        break;
      }
      case EvKind::Resubmit: {
        const Job& job = workload_.job(ev.id);
        state_.enqueue(job, now, estimator_.estimate(job, 0.0));
        ++result.retries;
        break;
      }
    }
  }

  /// Terminate the current attempt of `id` as a failure: free its nodes,
  /// account wasted work and checkpoint credit, then resubmit or abandon.
  void fail_attempt(JobId id, Seconds now, SimResult& result) {
    const Job& job = workload_.job(id);
    const int attempt = running_attempt_[id];
    RTP_ASSERT(attempt >= 1);
    running_attempt_[id] = -1;
    state_.finish_job(id);

    const RetryPolicy& retry = faults_->retry();
    const Seconds elapsed = std::max<Seconds>(0.0, now - attempt_start_[id]);
    const Seconds kept = retry.checkpoint_fraction * elapsed;
    remaining_[id] = std::max<Seconds>(1.0, remaining_[id] - kept);
    wasted_work_ += static_cast<double>(job.nodes) * (elapsed - kept);
    kept_credit_[id] += static_cast<double>(job.nodes) * kept;

    ++result.failures;
    if (observer_) observer_->on_fail(job, now, attempt);

    if (attempt >= retry.max_attempts) {
      ++result.abandoned;
      // Checkpointed work of an abandoned job was ultimately wasted too.
      wasted_work_ += kept_credit_[id];
      kept_credit_[id] = 0.0;
    } else {
      events_.push({now + faults_->resubmit_delay(job, attempt), EvKind::Resubmit, id, 0, 0});
    }
  }

  void refresh_estimates(Seconds now) {
    if (policy_.uses_queue_estimates())
      for (SchedJob& sj : state_.mutable_queue())
        sj.estimate = estimator_.estimate(*sj.job, 0.0);
    if (policy_.uses_running_estimates())
      for (SchedJob& sj : state_.mutable_running())
        sj.estimate = estimator_.estimate(*sj.job, sj.age(now));
  }

  void schedule_pass(Seconds now, SimResult& result) {
    refresh_estimates(now);
    for (JobId id : policy_.select_starts(now, state_)) {
      state_.start_job(id, now);
      const Job& job = workload_.job(id);
      if (result.attempts[id] == 0) {
        result.start_times[id] = now;
        result.waits[id] = now - job.submit;
      }
      const int attempt = ++result.attempts[id];
      ++result.attempts_started;
      attempt_start_[id] = now;
      running_attempt_[id] = attempt;

      const Seconds duration =
          std::max(options_.min_runtime, faults_ ? remaining_[id] : job.runtime);
      if (faults_) {
        const AttemptOutcome outcome = faults_->attempt_outcome(job, attempt);
        if (outcome.fails) {
          const Seconds elapsed = std::max<Seconds>(1e-3, outcome.fail_fraction * duration);
          events_.push({now + elapsed, EvKind::Fail, id, 0, attempt});
        } else {
          events_.push({now + duration, EvKind::Finish, id, 0, attempt});
        }
      } else {
        events_.push({now + duration, EvKind::Finish, id, 0, attempt});
      }
      if (observer_) observer_->on_start(job, now);
    }
  }

  const Workload& workload_;
  const SchedulerPolicy& policy_;
  RuntimeEstimator& estimator_;
  SimObserver* observer_;
  SimOptions options_;
  const FaultModel* faults_;  // nullptr when disabled
  SystemState state_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;

  double total_work_ = 0.0;   // useful (completed) node-seconds
  double wasted_work_ = 0.0;  // failed-attempt node-seconds, net of checkpoints

  // Per-job attempt bookkeeping, indexed by JobId.
  std::vector<Seconds> attempt_start_;
  std::vector<int> running_attempt_;   // attempt number while running, else -1
  std::vector<Seconds> remaining_;     // run time still owed (faults only)
  std::vector<double> kept_credit_;    // checkpointed node-seconds (faults only)
};

}  // namespace

SimResult simulate(const Workload& workload, const SchedulerPolicy& policy,
                   RuntimeEstimator& estimator, SimObserver* observer,
                   const SimOptions& options) {
  workload.validate();
  Simulation sim(workload, policy, estimator, observer, options);
  return sim.run();
}

}  // namespace rtp
