#include "sim/simulator.hpp"

#include <algorithm>
#include <queue>

#include "core/error.hpp"

namespace rtp {
namespace {

struct Completion {
  Seconds time;
  JobId id;
  // Min-heap by time; ties broken by id for determinism.
  bool operator>(const Completion& other) const {
    if (time != other.time) return time > other.time;
    return id > other.id;
  }
};

class Simulation {
 public:
  Simulation(const Workload& workload, const SchedulerPolicy& policy,
             RuntimeEstimator& estimator, SimObserver* observer, const SimOptions& options)
      : workload_(workload),
        policy_(policy),
        estimator_(estimator),
        observer_(observer),
        options_(options),
        state_(workload.machine_nodes()) {}

  SimResult run() {
    SimResult result;
    result.workload_name = workload_.name();
    result.policy_name = policy_.name();
    result.estimator_name = estimator_.name();
    result.start_times.assign(workload_.size(), kNoTime);
    result.waits.assign(workload_.size(), 0.0);

    const auto& jobs = workload_.jobs();
    std::size_t next_arrival = 0;
    double total_work = 0.0;
    Seconds last_completion = 0.0;

    while (next_arrival < jobs.size() || !completions_.empty()) {
      const bool have_arrival = next_arrival < jobs.size();
      const bool have_completion = !completions_.empty();
      const Seconds ta = have_arrival ? jobs[next_arrival].submit : kTimeInfinity;
      const Seconds tc = have_completion ? completions_.top().time : kTimeInfinity;

      if (tc <= ta) {
        // Completion(s) first; drain every completion at this instant.
        const Seconds now = tc;
        while (!completions_.empty() && completions_.top().time <= now) {
          const JobId id = completions_.top().id;
          completions_.pop();
          state_.finish_job(id);
          const Job& job = workload_.job(id);
          estimator_.job_completed(job, now);
          if (observer_) observer_->on_finish(job, now);
          total_work += job.work();
          last_completion = std::max(last_completion, now);
        }
        schedule_pass(now, result);
      } else {
        const Seconds now = ta;
        const Job& job = jobs[next_arrival++];
        state_.enqueue(job, now, estimator_.estimate(job, 0.0));
        refresh_estimates(now);
        if (observer_) observer_->on_submit(now, state_, job);
        schedule_pass(now, result);
      }
    }

    const Seconds first_submit = jobs.empty() ? 0.0 : jobs.front().submit;
    finalize_metrics(result, total_work, workload_.machine_nodes(), first_submit,
                     last_completion);
    return result;
  }

 private:
  void refresh_estimates(Seconds now) {
    if (policy_.uses_queue_estimates())
      for (SchedJob& sj : state_.mutable_queue())
        sj.estimate = estimator_.estimate(*sj.job, 0.0);
    if (policy_.uses_running_estimates())
      for (SchedJob& sj : state_.mutable_running())
        sj.estimate = estimator_.estimate(*sj.job, sj.age(now));
  }

  void schedule_pass(Seconds now, SimResult& result) {
    refresh_estimates(now);
    for (JobId id : policy_.select_starts(now, state_)) {
      state_.start_job(id, now);
      const Job& job = workload_.job(id);
      result.start_times[id] = now;
      result.waits[id] = now - job.submit;
      completions_.push({now + std::max(options_.min_runtime, job.runtime), id});
      if (observer_) observer_->on_start(job, now);
    }
  }

  const Workload& workload_;
  const SchedulerPolicy& policy_;
  RuntimeEstimator& estimator_;
  SimObserver* observer_;
  SimOptions options_;
  SystemState state_;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<Completion>>
      completions_;
};

}  // namespace

SimResult simulate(const Workload& workload, const SchedulerPolicy& policy,
                   RuntimeEstimator& estimator, SimObserver* observer,
                   const SimOptions& options) {
  workload.validate();
  Simulation sim(workload, policy, estimator, observer, options);
  return sim.run();
}

}  // namespace rtp
