// Aggregate results of a scheduling simulation.
#pragma once

#include <string>
#include <vector>

#include "core/time.hpp"
#include "workload/job.hpp"

namespace rtp {

struct SimResult {
  std::string workload_name;
  std::string policy_name;
  std::string estimator_name;

  /// Busy node-seconds / (machine nodes x makespan); the paper's
  /// "Utilization (percent)" divided by 100.
  double utilization = 0.0;

  Seconds mean_wait = 0.0;
  Seconds median_wait = 0.0;
  Seconds max_wait = 0.0;

  /// First submission to last completion.
  Seconds makespan = 0.0;

  /// Per-job start times and waits, indexed by JobId.
  std::vector<Seconds> start_times;
  std::vector<Seconds> waits;
};

/// Fill the aggregate fields of `result` from its per-job vectors plus the
/// total work and machine size.
void finalize_metrics(SimResult& result, double total_work, int machine_nodes,
                      Seconds first_submit, Seconds last_completion);

}  // namespace rtp
