// Aggregate results of a scheduling simulation.
#pragma once

#include <string>
#include <vector>

#include "core/time.hpp"
#include "workload/job.hpp"

namespace rtp {

struct SimResult {
  std::string workload_name;
  std::string policy_name;
  std::string estimator_name;

  /// Busy node-seconds / (machine nodes x makespan); the paper's
  /// "Utilization (percent)" divided by 100.
  double utilization = 0.0;

  Seconds mean_wait = 0.0;
  Seconds median_wait = 0.0;
  Seconds max_wait = 0.0;

  /// First submission to last completion.
  Seconds makespan = 0.0;

  /// Per-job start times and waits, indexed by JobId.  For jobs that were
  /// retried these record the *first* attempt; a job that never started
  /// keeps kNoTime.
  std::vector<Seconds> start_times;
  std::vector<Seconds> waits;

  // -------------------------------------------------------------------
  // Fault-tolerance accounting.  All zero / trivial on a clean run, where
  // goodput == utilization and attempts[i] == 1.

  /// Attempts per job (1 on a clean run), indexed by JobId.
  std::vector<int> attempts;

  std::size_t attempts_started = 0;  ///< job starts, retries included
  std::size_t completed = 0;         ///< jobs that ran to completion
  std::size_t failures = 0;          ///< failed attempts (hazard or node loss)
  std::size_t retries = 0;           ///< resubmissions performed
  std::size_t abandoned = 0;         ///< jobs dropped after max_attempts
  std::size_t node_outages = 0;      ///< node-down events processed

  /// Node-seconds burned by failed attempts (checkpointed work excluded).
  double wasted_work = 0.0;

  /// Useful work only: completed jobs' node-seconds over the machine-time
  /// area.  `utilization` counts wasted work as busy; goodput does not.
  double goodput = 0.0;
};

/// Fill the aggregate fields of `result` from its per-job vectors plus the
/// total work and machine size.
void finalize_metrics(SimResult& result, double total_work, int machine_nodes,
                      Seconds first_submit, Seconds last_completion);

}  // namespace rtp
