// Event-driven simulation of a space-shared machine under one policy.
//
// Events are job arrivals (from the workload) and job completions (at the
// job's *actual* run time).  At every event the scheduler's run-time
// estimates are refreshed from the estimator and the policy picks jobs to
// start — the paper's "the scheduling algorithm attempts to start an
// application whenever any application is enqueued or finishes".
//
// Completions at a given instant are processed before arrivals at the same
// instant so freed nodes are visible to the arriving job.
#pragma once

#include "sched/estimator.hpp"
#include "sched/policy.hpp"
#include "sim/metrics.hpp"
#include "workload/workload.hpp"

namespace rtp {

/// Hooks for experiment instrumentation (wait-time prediction).
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// After `job` is enqueued (estimates refreshed) and before the
  /// scheduling pass runs.  `state` includes the new job at the queue tail.
  virtual void on_submit(Seconds now, const SystemState& state, const Job& job) {
    (void)now, (void)state, (void)job;
  }

  /// When a job begins executing.
  virtual void on_start(const Job& job, Seconds start) { (void)job, (void)start; }

  /// When a job completes (after the estimator has incorporated it).
  virtual void on_finish(const Job& job, Seconds end) { (void)job, (void)end; }
};

struct SimOptions {
  /// Floor for zero actual run times so completions strictly follow starts.
  Seconds min_runtime = 1.0;
};

/// Run the whole workload to completion.  The estimator provides run-time
/// estimates to the policy and observes completions in simulated order.
SimResult simulate(const Workload& workload, const SchedulerPolicy& policy,
                   RuntimeEstimator& estimator, SimObserver* observer = nullptr,
                   const SimOptions& options = {});

}  // namespace rtp
