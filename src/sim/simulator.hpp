// Event-driven simulation of a space-shared machine under one policy.
//
// Events are job arrivals (from the workload), job completions (at the
// job's *actual* run time), and — when a FaultModel is attached — attempt
// failures, node outages / repairs, and retry resubmissions.  At every
// event the scheduler's run-time estimates are refreshed from the estimator
// and the policy picks jobs to start — the paper's "the scheduling
// algorithm attempts to start an application whenever any application is
// enqueued or finishes".
//
// Completions at a given instant are processed before arrivals at the same
// instant so freed nodes are visible to the arriving job.  With the fault
// model disabled the simulation is bit-for-bit the clean-trace simulation.
#pragma once

#include "sched/estimator.hpp"
#include "sched/policy.hpp"
#include "sim/faults.hpp"
#include "sim/metrics.hpp"
#include "workload/workload.hpp"

namespace rtp {

/// Hooks for experiment instrumentation (wait-time prediction).
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// After `job` is enqueued (estimates refreshed) and before the
  /// scheduling pass runs.  `state` includes the new job at the queue tail.
  /// Fired for trace arrivals only, not fault-driven resubmissions.
  virtual void on_submit(Seconds now, const SystemState& state, const Job& job) {
    (void)now, (void)state, (void)job;
  }

  /// When a job begins executing (every attempt).
  virtual void on_start(const Job& job, Seconds start) { (void)job, (void)start; }

  /// When a job completes (after the estimator has incorporated it).
  virtual void on_finish(const Job& job, Seconds end) { (void)job, (void)end; }

  /// When attempt `attempt` (1-based) of a running job dies — its own
  /// hazard or a node outage killing it.
  virtual void on_fail(const Job& job, Seconds when, int attempt) {
    (void)job, (void)when, (void)attempt;
  }

  /// Capacity changes; `down_nodes` is the total currently out of service
  /// after the event.
  virtual void on_node_down(Seconds when, int down_nodes) { (void)when, (void)down_nodes; }
  virtual void on_node_up(Seconds when, int down_nodes) { (void)when, (void)down_nodes; }
};

struct SimOptions {
  /// Floor for zero actual run times so completions strictly follow starts.
  Seconds min_runtime = 1.0;

  /// Optional fault injection; nullptr (or a disabled model) leaves the
  /// clean-trace behavior untouched.  Not owned; must outlive simulate().
  const FaultModel* faults = nullptr;
};

/// Run the whole workload to completion.  The estimator provides run-time
/// estimates to the policy and observes completions in simulated order.
SimResult simulate(const Workload& workload, const SchedulerPolicy& policy,
                   RuntimeEstimator& estimator, SimObserver* observer = nullptr,
                   const SimOptions& options = {});

}  // namespace rtp
