#include "sim/metrics.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "stats/quantiles.hpp"
#include "stats/summary.hpp"

namespace rtp {

void finalize_metrics(SimResult& result, double total_work, int machine_nodes,
                      Seconds first_submit, Seconds last_completion) {
  RTP_CHECK(machine_nodes > 0, "finalize_metrics: machine nodes must be positive");
  result.makespan = std::max<Seconds>(0.0, last_completion - first_submit);
  if (result.makespan > 0.0) {
    const double area = static_cast<double>(machine_nodes) * result.makespan;
    // `total_work` is useful work; wasted node-seconds count as busy for
    // utilization but not for goodput.  Clean runs have zero waste, so the
    // two coincide and utilization matches the paper's definition exactly.
    result.utilization = (total_work + result.wasted_work) / area;
    result.goodput = total_work / area;
  }

  if (result.waits.empty()) return;
  RunningStats wait_stats;
  for (Seconds w : result.waits) wait_stats.add(w);
  result.mean_wait = wait_stats.mean();
  result.max_wait = wait_stats.max();
  result.median_wait = median(result.waits);
}

}  // namespace rtp
