// rtpd — the online wait-time estimate daemon.
//
// Serves the rtpd line protocol (src/service/protocol.hpp) over stdin or a
// localhost TCP socket.  The session mirrors a live scheduler: pipe a
// recorded event stream in, interleave ESTIMATE / INTERVAL / STATS queries.
//
//   # convert a trace into a protocol event stream (runs the batch
//   # scheduler once to decide starts):
//   ./rtpd --trace traces/anl.trace --dump-log > anl.events
//
//   # serve it over a pipe, querying as it goes:
//   (head -n 500 anl.events; printf 'STATS\nQUIT\n') | ./rtpd --trace traces/anl.trace
//
//   # or serve TCP on an ephemeral port:
//   ./rtpd --trace traces/anl.trace --mode tcp --port 7421
//
//   # crash-safe serving: journal every accepted event, then recover after
//   # a kill -9 and continue exactly where the acknowledged stream ended:
//   ./rtpd --nodes 64 --journal wal.rtpj --fsync always
//   ./rtpd --nodes 64 --recover wal.rtpj
//
// --trace supplies the machine size and the field mask the predictor is
// built from; --replay-events pre-plays a prefix of the recorded stream so
// the session has live state before serving.  Without --trace the session
// starts empty on --nodes nodes (history predictors start cold).
//
// Replication (src/service/replication.hpp): a primary streams its journal
// to warm standbys, a follower mirrors one and serves read-only queries:
//
//   # primary, streaming the journal to a follower's replication port:
//   ./rtpd --nodes 64 --journal p.rtpj --replicate-to 127.0.0.1:7500
//   # follower: replication listener on 7500, read-only clients on 7421:
//   ./rtpd --nodes 64 --journal f.rtpj --follow 7500 --mode tcp --port 7421
//   # failover: PROMOTE over the wire (rtpctl), --promote-after-ms
//   # auto-promotion, or restart the follower's journal as the primary:
//   ./rtpd --nodes 64 --journal f.rtpj --follow 7500 --promote
//
// Live migration (src/service/migrate.hpp): any journaled primary can hand
// its session to a fresh follower with zero downtime — the coordinator (in
// rtprouter) attaches the destination as a follower (MIGRATE to=...),
// drains, retires the source (crash-durable "<journal>.retired" marker),
// and promotes the destination.  A retired rtpd answers session verbs with
// "ERR code=moved map_version=<N>" until MIGRATE resume.
//
// SIGINT/SIGTERM drain gracefully: the server stops accepting, finishes
// in-flight requests, fsyncs the journal, and emits a final STATS line on
// stderr before exiting.  SIGPIPE is ignored process-wide: peers (clients,
// followers, chaos proxies) may vanish mid-write at any time, and the
// rtp::io wrappers already turn EPIPE into an orderly disconnect.
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "core/args.hpp"
#include "core/error.hpp"
#include "core/log.hpp"
#include "core/strings.hpp"
#include "predict/factory.hpp"
#include "predict/simple.hpp"
#include "sched/policy.hpp"
#include "service/io.hpp"
#include "service/journal.hpp"
#include "service/replay.hpp"
#include "service/replication.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "workload/native.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;
int g_wake_pipe[2] = {-1, -1};

extern "C" void on_signal(int sig) {
  g_signal = sig;
  if (g_wake_pipe[1] >= 0) {
    const char byte = 1;
    // rtlint: allow(raw-io) async-signal-safe raw write from the handler;
    // the io:: wrappers build strings and are off-limits here.
    (void)!::write(g_wake_pipe[1], &byte, 1);
  }
}

void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads must return so we can drain
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  // A peer that hard-closes mid-write must surface as EPIPE through the
  // rtp::io wrappers, never as a process-killing signal.
  struct sigaction ignore_pipe{};
  ignore_pipe.sa_handler = SIG_IGN;
  sigemptyset(&ignore_pipe.sa_mask);
  ::sigaction(SIGPIPE, &ignore_pipe, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    rtp::ArgParser args(argc, argv);
    args.add_option("trace", "native trace file backing the session (see tracegen)", "");
    args.add_flag("dump-log", "print the trace's protocol event stream and exit");
    args.add_option("replay-events", "pre-play this many recorded events (-1 = all)", "0");
    args.add_option("mode", "stdin|tcp", "stdin");
    args.add_option("port", "TCP port (0 = ephemeral)", "0");
    args.add_option("nodes", "machine nodes when no --trace is given", "128");
    args.add_option("policy", "fcfs|lwf|backfill|easy (mirrored scheduler)", "backfill");
    args.add_option("predictor", "actual|max|stf|gibbons|downey-avg|downey-med", "max");
    args.add_option("threads", "TCP connection workers", "2");
    args.add_option("journal", "write-ahead journal file (created if absent)", "");
    args.add_option("recover", "recover state from this journal, then keep journaling to it",
                    "");
    args.add_option("fsync", "journal fsync policy: always|interval|never", "interval");
    args.add_option("fsync-interval", "committed records between fsyncs (interval policy)",
                    "64");
    args.add_option("snapshot-every", "journal records between snapshots (0 = never)", "256");
    args.add_option("max-pending", "concurrent requests before shedding (0 = unbounded)",
                    "64");
    args.add_option("max-connections", "concurrent TCP clients (0 = unbounded)", "64");
    args.add_option("deadline-ms", "per-request deadline before shedding (0 = none)", "0");
    args.add_option("replicate-to",
                    "stream the journal to these follower replication ports "
                    "(host:port, comma-separated; requires --journal)", "");
    args.add_option("follow",
                    "follower mode: accept a primary's journal stream on this "
                    "replication port (0 = ephemeral; requires --journal)", "");
    args.add_flag("promote",
                  "with --follow: skip following and come up as the primary "
                  "(restart a follower's journal after failover)");
    args.add_option("promote-after-ms",
                    "follower auto-promotion after this much primary silence "
                    "(0 = PROMOTE verb only)", "0");
    args.add_option("heartbeat-ms", "replication heartbeat cadence", "500");
    args.add_option("stats-interval",
                    "emit a STATS line to stderr every this many seconds (0 = off)", "0");
    args.add_flag("verbose", "progress logging to stderr");
    if (!args.parse()) return 0;
    if (args.flag("verbose")) rtp::set_log_level(rtp::LogLevel::Info);

    const std::string mode = args.str("mode");
    RTP_CHECK(mode == "stdin" || mode == "tcp", "--mode must be stdin or tcp");

    auto policy = rtp::make_policy(rtp::policy_kind_from_string(args.str("policy")));

    rtp::Workload workload;
    const bool have_trace = !args.str("trace").empty();
    if (have_trace) workload = rtp::read_native_file(args.str("trace"));
    const int nodes =
        have_trace ? workload.machine_nodes() : static_cast<int>(args.integer("nodes"));

    auto predictor = rtp::make_runtime_estimator(
        rtp::predictor_kind_from_string(args.str("predictor")), workload);

    rtp::RecordedRun recorded;
    if (have_trace) {
      // The mirrored scheduler runs on user maxima (the EASY convention),
      // exactly as in run_wait_prediction.
      rtp::MaxRuntimePredictor live(workload);
      recorded = rtp::record_session_log(workload, *policy, live);
    }
    if (args.flag("dump-log")) {
      RTP_CHECK(have_trace, "--dump-log requires --trace");
      rtp::write_event_log(std::cout, recorded.events);
      std::cout.flush();
      // A partial event log silently drives a wrong session downstream, so
      // a short write (closed pipe, full disk) must be a hard error.
      RTP_CHECK(std::cout.good(), "--dump-log: write to stdout failed (short write or "
                                  "no space on device)");
      return 0;
    }

    rtp::SessionOptions session_options;
    session_options.name = have_trace ? workload.name() : "online";
    rtp::OnlineSession session(nodes, *policy, *predictor, session_options);

    // --- Durability: recovery first, then attach the writer. --------------
    // Parsed up front so a bad --fsync value dies even without --journal.
    const rtp::FsyncPolicy fsync_policy =
        rtp::fsync_policy_from_string(args.str("fsync"));
    std::string journal_path = args.str("journal");
    const std::string recover_path = args.str("recover");
    if (!recover_path.empty()) {
      RTP_CHECK(journal_path.empty() || journal_path == recover_path,
                "--recover and --journal must name the same file");
      journal_path = recover_path;
    }

    rtp::RecoveryReport recovery;
    bool recovered = false;
    if (!recover_path.empty()) {
      recovery = rtp::recover_session(recover_path, session);
      recovered = true;
    } else if (!journal_path.empty()) {
      // Auto-recovery: an existing journal holds acknowledged state from a
      // previous run; starting fresh on top of it would fork history.
      std::ifstream probe(journal_path, std::ios::binary);
      if (probe.good()) {
        recovery = rtp::recover_session(journal_path, session);
        recovered = recovery.records > 0 || recovery.used_snapshot;
      }
    }
    if (recovered) {
      std::cerr << "rtpd recovered " << recovery.records << " journal records ("
                << recovery.events << " events, " << recovery.predictions
                << " predictions" << (recovery.used_snapshot ? ", from snapshot" : "")
                << "), session at t=" << session.now() << " version="
                << session.state_version() << "\n";
      if (recovery.truncated || recovery.rejected_events > 0)
        std::cerr << "rtpd recovery warning: " << recovery.warning << "\n";
    }

    const long long replay_events = args.integer("replay-events");
    if (replay_events != 0) {
      RTP_CHECK(have_trace, "--replay-events requires --trace");
      RTP_CHECK(!recovered,
                "--replay-events conflicts with journal recovery: the recovered session "
                "already has state");
      std::vector<rtp::Request> prefix = recorded.events;
      if (replay_events > 0 &&
          static_cast<std::size_t>(replay_events) < prefix.size())
        prefix.resize(static_cast<std::size_t>(replay_events));
      rtp::ReplayOptions replay_options;
      replay_options.estimate_on_submit = false;  // pre-play state, not queries
      rtp::replay_through_session(session, prefix, replay_options);
      rtp::log_info("pre-played ", prefix.size(), " events; session now at t=",
                    session.now());
    }

    std::unique_ptr<rtp::JournalWriter> journal;
    if (!journal_path.empty()) {
      rtp::JournalOptions journal_options;
      journal_options.fsync = fsync_policy;
      journal_options.fsync_interval =
          static_cast<std::size_t>(args.integer("fsync-interval"));
      journal = std::make_unique<rtp::JournalWriter>(journal_path, journal_options);
    }

    // --- Replication roles. -----------------------------------------------
    const std::string replicate_to = args.str("replicate-to");
    const std::string follow = args.str("follow");
    RTP_CHECK(replicate_to.empty() || journal != nullptr,
              "--replicate-to requires --journal");
    RTP_CHECK(follow.empty() || journal != nullptr, "--follow requires --journal");
    RTP_CHECK(replicate_to.empty() || follow.empty(),
              "--replicate-to and --follow are mutually exclusive");
    RTP_CHECK(!args.flag("promote") || !follow.empty(), "--promote requires --follow");

    // Any journaled primary gets a sender, follower targets or not: live
    // migration (MIGRATE to=...) attaches the destination as a follower at
    // runtime, so the streaming machinery must already be in place.
    std::unique_ptr<rtp::ReplicationSender> sender;
    if (journal != nullptr && follow.empty()) {
      rtp::ReplicationOptions repl_options;
      repl_options.heartbeat_ms =
          static_cast<std::uint32_t>(args.integer("heartbeat-ms"));
      sender = std::make_unique<rtp::ReplicationSender>(
          journal_path, rtp::session_fingerprint(session), repl_options);
      for (const std::string_view piece : rtp::split(replicate_to, ',')) {
        const std::string address(rtp::trim(piece));
        if (address.empty()) continue;
        std::string host, error;
        std::uint16_t port = 0;
        RTP_CHECK(rtp::io::split_hostport(address, &host, &port, &error),
                  "--replicate-to: " + error);
        sender->add_follower(host, port);
      }
    }

    rtp::ServerOptions server_options;
    server_options.threads = static_cast<std::size_t>(args.integer("threads"));
    server_options.journal = journal.get();
    server_options.snapshot_every = static_cast<std::size_t>(args.integer("snapshot-every"));
    server_options.max_pending = static_cast<std::size_t>(args.integer("max-pending"));
    server_options.max_connections =
        static_cast<std::size_t>(args.integer("max-connections"));
    server_options.request_deadline_ms =
        static_cast<std::uint32_t>(args.integer("deadline-ms"));
    server_options.replication = sender.get();
    // Crash-durable migration marker: a source kill -9'd after MIGRATE
    // retire must come back retired, not as a second owner.
    if (!journal_path.empty())
      server_options.retire_sidecar = journal_path + ".retired";
    rtp::ServiceServer server(session, server_options);

    // Session state that is not in the journal (recovery consumed it, or
    // --replay-events created it) must be snapshotted before serving, or a
    // later recovery would replay the tail against the wrong base.  A
    // follower must not: its journal is a record-for-record mirror of the
    // primary's, and a locally minted snapshot record would fork it.
    if (journal != nullptr && follow.empty() && session.state_version() > 0)
      server.snapshot_now();

    std::unique_ptr<rtp::FollowerApplier> applier;
    if (!follow.empty()) {
      rtp::FollowerOptions follower_options;
      follower_options.promote_after_ms =
          static_cast<std::uint32_t>(args.integer("promote-after-ms"));
      applier = std::make_unique<rtp::FollowerApplier>(
          server, session, *journal, rtp::session_fingerprint(session),
          follower_options);
      server.attach_follower(applier.get());
      if (args.flag("promote")) {
        // Failover restart: come up as the primary on the mirrored journal.
        applier->promote();
      } else {
        const std::uint16_t repl_port = applier->listen_on(
            static_cast<std::uint16_t>(args.integer("follow")));
        std::cerr << "rtpd following on 127.0.0.1:" << repl_port << "\n";
        applier->start();
      }
    }
    if (sender != nullptr) {
      sender->set_snapshot_source(
          [&server] { return server.replication_snapshot(); });
      sender->start();
    }

    RTP_CHECK(::pipe(g_wake_pipe) == 0, "cannot create signal wake pipe");
    install_signal_handlers();

    // --stats-interval: a one-line heartbeat on stderr so an operator (or a
    // log scraper) can watch queue depth and replication lag without
    // spending a client connection.
    const long long stats_interval = args.integer("stats-interval");
    std::thread stats_thread;
    std::mutex stats_mutex;
    std::condition_variable stats_cv;
    bool stats_stop = false;
    if (stats_interval > 0) {
      stats_thread = std::thread([&] {
        std::unique_lock<std::mutex> lock(stats_mutex);
        for (;;) {
          if (stats_cv.wait_for(lock, std::chrono::seconds(stats_interval),
                                [&] { return stats_stop; }))
            return;
          lock.unlock();
          std::cerr << "rtpd stats: " << server.stats_line() << "\n";
          lock.lock();
        }
      });
    }

    if (mode == "stdin") {
      // A signal interrupts the blocked getline (no SA_RESTART), the stream
      // loop ends, and the drain path below runs.
      server.serve_stream(std::cin, std::cout);
    } else {
      const std::uint16_t port =
          server.listen_on(static_cast<std::uint16_t>(args.integer("port")));
      std::cerr << "rtpd listening on 127.0.0.1:" << port << "\n";
      // The watcher turns a signal into shutdown(): the handler writes one
      // byte to the pipe, the watcher unblocks and closes the listener.
      std::thread watcher([&server] {
        char byte = 0;
        rtp::io::read_some(g_wake_pipe[0], &byte, 1);
        server.shutdown();
      });
      server.serve();
      // serve() can also return on its own (listener error); wake the
      // watcher so it always terminates.  shutdown() is idempotent.
      const char byte = 1;
      rtp::io::write_all(g_wake_pipe[1], &byte, 1);
      watcher.join();
    }

    // --- Drain: make acknowledged state durable, report, exit cleanly. ----
    if (stats_thread.joinable()) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex);
        stats_stop = true;
      }
      stats_cv.notify_all();
      stats_thread.join();
    }
    if (applier != nullptr) applier->stop();
    if (sender != nullptr) sender->stop();
    if (journal != nullptr) journal->sync();
    if (g_signal != 0 || args.flag("verbose")) {
      bool quit = false;
      std::cerr << "rtpd "
                << (g_signal != 0 ? "drained after signal " + std::to_string(g_signal)
                                  : "final")
                << ": " << server.handle_line("STATS", 0, &quit) << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "rtpd: " << e.what() << "\n";
    return 1;
  }
}
