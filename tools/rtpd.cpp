// rtpd — the online wait-time estimate daemon.
//
// Serves the rtpd line protocol (src/service/protocol.hpp) over stdin or a
// localhost TCP socket.  The session mirrors a live scheduler: pipe a
// recorded event stream in, interleave ESTIMATE / INTERVAL / STATS queries.
//
//   # convert a trace into a protocol event stream (runs the batch
//   # scheduler once to decide starts):
//   ./rtpd --trace traces/anl.trace --dump-log > anl.events
//
//   # serve it over a pipe, querying as it goes:
//   (head -n 500 anl.events; printf 'STATS\nQUIT\n') | ./rtpd --trace traces/anl.trace
//
//   # or serve TCP on an ephemeral port:
//   ./rtpd --trace traces/anl.trace --mode tcp --port 7421
//
// --trace supplies the machine size and the field mask the predictor is
// built from; --replay-events pre-plays a prefix of the recorded stream so
// the session has live state before serving.  Without --trace the session
// starts empty on --nodes nodes (history predictors start cold).
#include <fstream>
#include <iostream>

#include "core/args.hpp"
#include "core/error.hpp"
#include "core/log.hpp"
#include "predict/factory.hpp"
#include "predict/simple.hpp"
#include "sched/policy.hpp"
#include "service/replay.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "workload/native.hpp"

int main(int argc, char** argv) {
  try {
    rtp::ArgParser args(argc, argv);
    args.add_option("trace", "native trace file backing the session (see tracegen)", "");
    args.add_flag("dump-log", "print the trace's protocol event stream and exit");
    args.add_option("replay-events", "pre-play this many recorded events (-1 = all)", "0");
    args.add_option("mode", "stdin|tcp", "stdin");
    args.add_option("port", "TCP port (0 = ephemeral)", "0");
    args.add_option("nodes", "machine nodes when no --trace is given", "128");
    args.add_option("policy", "fcfs|lwf|backfill|easy (mirrored scheduler)", "backfill");
    args.add_option("predictor", "actual|max|stf|gibbons|downey-avg|downey-med", "max");
    args.add_option("threads", "TCP connection workers", "2");
    args.add_flag("verbose", "progress logging to stderr");
    if (!args.parse()) return 0;
    if (args.flag("verbose")) rtp::set_log_level(rtp::LogLevel::Info);

    const std::string mode = args.str("mode");
    RTP_CHECK(mode == "stdin" || mode == "tcp", "--mode must be stdin or tcp");

    auto policy = rtp::make_policy(rtp::policy_kind_from_string(args.str("policy")));

    rtp::Workload workload;
    const bool have_trace = !args.str("trace").empty();
    if (have_trace) workload = rtp::read_native_file(args.str("trace"));
    const int nodes =
        have_trace ? workload.machine_nodes() : static_cast<int>(args.integer("nodes"));

    auto predictor = rtp::make_runtime_estimator(
        rtp::predictor_kind_from_string(args.str("predictor")), workload);

    rtp::RecordedRun recorded;
    if (have_trace) {
      // The mirrored scheduler runs on user maxima (the EASY convention),
      // exactly as in run_wait_prediction.
      rtp::MaxRuntimePredictor live(workload);
      recorded = rtp::record_session_log(workload, *policy, live);
    }
    if (args.flag("dump-log")) {
      RTP_CHECK(have_trace, "--dump-log requires --trace");
      rtp::write_event_log(std::cout, recorded.events);
      return 0;
    }

    rtp::SessionOptions session_options;
    session_options.name = have_trace ? workload.name() : "online";
    rtp::OnlineSession session(nodes, *policy, *predictor, session_options);

    const long long replay_events = args.integer("replay-events");
    if (replay_events != 0) {
      RTP_CHECK(have_trace, "--replay-events requires --trace");
      std::vector<rtp::Request> prefix = recorded.events;
      if (replay_events > 0 &&
          static_cast<std::size_t>(replay_events) < prefix.size())
        prefix.resize(static_cast<std::size_t>(replay_events));
      rtp::ReplayOptions replay_options;
      replay_options.estimate_on_submit = false;  // pre-play state, not queries
      rtp::replay_through_session(session, prefix, replay_options);
      rtp::log_info("pre-played ", prefix.size(), " events; session now at t=",
                    session.now());
    }

    rtp::ServerOptions server_options;
    server_options.threads = static_cast<std::size_t>(args.integer("threads"));
    rtp::ServiceServer server(session, server_options);

    if (mode == "stdin") {
      server.serve_stream(std::cin, std::cout);
    } else {
      const std::uint16_t port =
          server.listen_on(static_cast<std::uint16_t>(args.integer("port")));
      std::cerr << "rtpd listening on 127.0.0.1:" << port << "\n";
      server.serve();
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "rtpd: " << e.what() << "\n";
    return 1;
  }
}
