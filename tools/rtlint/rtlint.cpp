#include "rtlint/rtlint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace rtlint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool has_suffix(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// 1-based line number of a byte offset, via the sorted line-start table.
class LineIndex {
 public:
  explicit LineIndex(std::string_view text) {
    starts_.push_back(0);
    for (std::size_t i = 0; i < text.size(); ++i)
      if (text[i] == '\n') starts_.push_back(i + 1);
  }
  std::size_t line_of(std::size_t offset) const {
    const auto it = std::upper_bound(starts_.begin(), starts_.end(), offset);
    return static_cast<std::size_t>(it - starts_.begin());
  }

 private:
  std::vector<std::size_t> starts_;
};

/// Inline suppression annotations, parsed from the unscrubbed source so
/// they can live inside comments.
struct Annotations {
  std::map<std::size_t, std::set<std::string>> per_line;  // line -> rules
  std::set<std::string> whole_file;                       // allow-file rules

  bool allows(const std::string& rule, std::size_t line) const {
    if (whole_file.count(rule) != 0 || whole_file.count("*") != 0) return true;
    const auto it = per_line.find(line);
    if (it == per_line.end()) return false;
    return it->second.count(rule) != 0 || it->second.count("*") != 0;
  }
};

/// Split into lines (without terminators); index i holds 1-based line i+1.
std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) {
      out.emplace_back(text.substr(begin));
      break;
    }
    out.emplace_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

bool blank_line(std::string_view line) {
  return line.find_first_not_of(" \t\r") == std::string_view::npos;
}

/// An annotation on a comment-only line covers the next code line, so a
/// justification can sit above the construct it blesses instead of
/// stretching it past the line-length limit.
Annotations parse_annotations(std::string_view source, std::string_view scrubbed) {
  Annotations out;
  const LineIndex lines(source);
  const std::vector<std::string> scrubbed_lines = split_lines(scrubbed);
  static const std::string_view kMarker = "rtlint:";
  std::size_t pos = 0;
  while ((pos = source.find(kMarker, pos)) != std::string_view::npos) {
    std::size_t cursor = pos + kMarker.size();
    while (cursor < source.size() && source[cursor] == ' ') ++cursor;
    const bool file_wide = source.compare(cursor, 11, "allow-file(") == 0;
    const bool line_wide = !file_wide && source.compare(cursor, 6, "allow(") == 0;
    if (file_wide || line_wide) {
      cursor += file_wide ? 11 : 6;
      const std::size_t close = source.find(')', cursor);
      if (close != std::string_view::npos) {
        const std::string rule(source.substr(cursor, close - cursor));
        if (file_wide) {
          out.whole_file.insert(rule);
        } else {
          std::size_t line = lines.line_of(pos);
          out.per_line[line].insert(rule);
          if (line - 1 < scrubbed_lines.size() && blank_line(scrubbed_lines[line - 1])) {
            while (line < scrubbed_lines.size() && blank_line(scrubbed_lines[line])) ++line;
            out.per_line[line + 1].insert(rule);
          }
        }
      }
    }
    pos += kMarker.size();
  }
  return out;
}

/// Skip an escape sequence inside a quoted literal; returns chars consumed.
std::size_t escape_len(std::string_view text, std::size_t i) {
  return (text[i] == '\\' && i + 1 < text.size()) ? 2 : 1;
}

struct RangeFor {
  std::size_t offset = 0;    // offset of the `for` keyword
  std::string range_expr;    // text after the top-level `:`
};

/// Find every range-based for loop in scrubbed text, handling nested
/// parentheses and ignoring `::` when looking for the range colon.
std::vector<RangeFor> find_range_fors(std::string_view text) {
  std::vector<RangeFor> out;
  std::size_t pos = 0;
  while ((pos = text.find("for", pos)) != std::string_view::npos) {
    const bool word_start = pos == 0 || !is_ident_char(text[pos - 1]);
    const bool word_end = pos + 3 >= text.size() || !is_ident_char(text[pos + 3]);
    if (!word_start || !word_end) {
      pos += 3;
      continue;
    }
    std::size_t open = pos + 3;
    while (open < text.size() && std::isspace(static_cast<unsigned char>(text[open])))
      ++open;
    if (open >= text.size() || text[open] != '(') {
      pos += 3;
      continue;
    }
    int depth = 0;
    std::size_t colon = std::string_view::npos;
    std::size_t close = std::string_view::npos;
    for (std::size_t i = open; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0) {
          close = i;
          break;
        }
      }
      if (c == ';' && depth == 1) break;  // classic for, not range-for
      if (c == ':' && depth == 1 && colon == std::string_view::npos) {
        const bool scope_op = (i + 1 < text.size() && text[i + 1] == ':') ||
                              (i > 0 && text[i - 1] == ':');
        if (!scope_op) colon = i;
      }
    }
    if (colon != std::string_view::npos && close != std::string_view::npos) {
      RangeFor loop;
      loop.offset = pos;
      loop.range_expr = std::string(text.substr(colon + 1, close - colon - 1));
      out.push_back(std::move(loop));
    }
    pos = close == std::string_view::npos ? pos + 3 : close;
  }
  return out;
}

bool contains_word(std::string_view text, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return true;
    pos += word.size();
  }
  return false;
}

/// Identifier ending at (exclusive) offset `end`, or empty.
std::string ident_before(std::string_view text, std::size_t end) {
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(text[begin - 1])) --begin;
  if (begin == end) return {};
  if (std::isdigit(static_cast<unsigned char>(text[begin])) != 0) return {};
  return std::string(text.substr(begin, end - begin));
}

std::size_t skip_spaces(std::string_view text, std::size_t i) {
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  return i;
}

/// Declared names whose (outermost) type is an unordered container, plus —
/// via `functions` — names of functions *returning* one.  Heuristic and
/// line-oriented, which matches the codebase's declaration style.
void collect_unordered_names(std::string_view scrubbed, std::set<std::string>& variables,
                             std::set<std::string>& functions) {
  std::istringstream stream{std::string(scrubbed)};
  std::string line;
  while (std::getline(stream, line)) {
    const std::size_t hit = std::min(line.find("unordered_map"), line.find("unordered_set"));
    if (hit == std::string::npos) continue;
    // Outermost-container check: a '<' before the match means the unordered
    // container is nested inside something ordered (vector<...unordered...>)
    // and iterating the outer object is fine.
    if (line.find('<', 0) < hit) continue;
    // Find the matching '>' of the template argument list, then the
    // declared identifier after it.
    std::size_t i = line.find('<', hit);
    if (i == std::string::npos) continue;
    int depth = 0;
    for (; i < line.size(); ++i) {
      if (line[i] == '<') ++depth;
      if (line[i] == '>' && --depth == 0) break;
    }
    if (depth != 0) continue;
    std::size_t cursor = skip_spaces(line, i + 1);
    while (cursor < line.size() && (line[cursor] == '&' || line[cursor] == '*'))
      cursor = skip_spaces(line, cursor + 1);
    std::size_t name_end = cursor;
    while (name_end < line.size() && is_ident_char(line[name_end])) ++name_end;
    if (name_end == cursor) continue;
    const std::string name = line.substr(cursor, name_end - cursor);
    const std::size_t after = skip_spaces(line, name_end);
    const char next = after < line.size() ? line[after] : ';';
    if (next == '(')
      functions.insert(name);
    else if (next == ';' || next == '=' || next == '{' || next == ',')
      variables.insert(name);
  }
}

bool is_float_literal(std::string_view token) {
  if (token.empty()) return false;
  bool digits = false, dot = false, exponent = false;
  std::size_t i = 0;
  for (; i < token.size(); ++i) {
    const char c = token[i];
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      digits = true;
    } else if (c == '.' && !dot && !exponent) {
      dot = true;
    } else if ((c == 'e' || c == 'E') && digits && !exponent) {
      exponent = true;
      if (i + 1 < token.size() && (token[i + 1] == '+' || token[i + 1] == '-')) ++i;
    } else {
      break;
    }
  }
  if (!digits || (!dot && !exponent)) return false;
  // Optional suffix, then end-of-token required.
  if (i < token.size() && (token[i] == 'f' || token[i] == 'F' || token[i] == 'l' ||
                           token[i] == 'L'))
    ++i;
  return i == token.size();
}

/// Longest [-\w.+] token ending at `end` (backwards), for float detection.
std::string number_token_before(std::string_view text, std::size_t end) {
  std::size_t begin = end;
  while (begin > 0) {
    const char c = text[begin - 1];
    if (is_ident_char(c) || c == '.') {
      --begin;
    } else if ((c == '+' || c == '-') && begin >= 2 &&
               (text[begin - 2] == 'e' || text[begin - 2] == 'E')) {
      begin -= 2;
    } else {
      break;
    }
  }
  return std::string(text.substr(begin, end - begin));
}

std::string number_token_after(std::string_view text, std::size_t begin) {
  std::size_t end = begin;
  while (end < text.size()) {
    const char c = text[end];
    if (is_ident_char(c) || c == '.') {
      ++end;
    } else if ((c == '+' || c == '-') && end > begin &&
               (text[end - 1] == 'e' || text[end - 1] == 'E')) {
      ++end;
    } else {
      break;
    }
  }
  return std::string(text.substr(begin, end - begin));
}

struct RuleContext {
  const std::string& path;
  std::string_view scrubbed;
  const LineIndex& lines;
  std::vector<Diagnostic>& out;

  void report(std::size_t offset, const std::string& rule, std::string message) const {
    out.push_back({path, lines.line_of(offset), rule, std::move(message)});
  }
};

void check_nondeterministic_source(const RuleContext& ctx) {
  static const std::string_view kBanned[] = {
      "std::rand", "srand",   "random_device", "gettimeofday",
      "drand48",   "rand_r",  "lrand48",       "getpid",
  };
  for (const std::string_view name : kBanned) {
    std::size_t pos = 0;
    while ((pos = ctx.scrubbed.find(name, pos)) != std::string_view::npos) {
      // A ':' on the left is namespace qualification (std::srand), which is
      // still the banned entity — only a longer identifier disqualifies.
      const bool left_ok = pos == 0 || !is_ident_char(ctx.scrubbed[pos - 1]);
      const std::size_t end = pos + name.size();
      const bool right_ok = end >= ctx.scrubbed.size() || !is_ident_char(ctx.scrubbed[end]);
      if (left_ok && right_ok)
        ctx.report(pos, "nondeterministic-source",
                   std::string(name) +
                       " is nondeterministic; draw from a seeded rtp::Rng (src/core/rng)");
      pos = end;
    }
  }
  // time(nullptr) / time(NULL) / time(0): wall-clock seeds in disguise.
  // `.`/`_`/`:` on the left mean some other entity named time (member call,
  // my_time, Clock::time) — except the std:: qualification of the libc call.
  std::size_t pos = 0;
  while ((pos = ctx.scrubbed.find("time", pos)) != std::string_view::npos) {
    const bool std_qualified =
        pos >= 5 && ctx.scrubbed.compare(pos - 5, 5, "std::") == 0;
    const bool left_ok =
        std_qualified || pos == 0 ||
        (!is_ident_char(ctx.scrubbed[pos - 1]) && ctx.scrubbed[pos - 1] != ':' &&
         ctx.scrubbed[pos - 1] != '.' && ctx.scrubbed[pos - 1] != '_');
    std::size_t cursor = skip_spaces(ctx.scrubbed, pos + 4);
    if (left_ok && cursor < ctx.scrubbed.size() && ctx.scrubbed[cursor] == '(') {
      cursor = skip_spaces(ctx.scrubbed, cursor + 1);
      for (const std::string_view arg : {"nullptr", "NULL", "0"}) {
        if (ctx.scrubbed.compare(cursor, arg.size(), arg) == 0) {
          const std::size_t after = skip_spaces(ctx.scrubbed, cursor + arg.size());
          if (after < ctx.scrubbed.size() && ctx.scrubbed[after] == ')') {
            ctx.report(pos, "nondeterministic-source",
                       "time(" + std::string(arg) +
                           ") reads the wall clock; experiments must not depend on it");
            break;
          }
        }
      }
    }
    pos += 4;
  }
}

void check_unordered_iter(const RuleContext& ctx, const std::set<std::string>& variables,
                          const std::set<std::string>& functions) {
  for (const RangeFor& loop : find_range_fors(ctx.scrubbed)) {
    const std::string_view expr = loop.range_expr;
    std::string culprit;
    if (expr.find("unordered_map") != std::string_view::npos ||
        expr.find("unordered_set") != std::string_view::npos) {
      culprit = "an unordered container expression";
    } else {
      for (const std::string& name : variables)
        if (contains_word(expr, name)) {
          culprit = "'" + name + "'";
          break;
        }
      if (culprit.empty())
        for (const std::string& name : functions)
          if (contains_word(expr, name) &&
              expr.find('(') != std::string_view::npos) {
            culprit = "the result of '" + name + "()'";
            break;
          }
    }
    if (!culprit.empty())
      ctx.report(loop.offset, "unordered-iter",
                 "range-for over " + culprit +
                     " iterates in hash order; use an ordered container or iterate a "
                     "sorted key list");
  }
}

/// Names that mark a value as a floating-point quantity even without a
/// visible literal: cache keys and multipliers.  `scale == cached_scale`
/// silently treats +0.0/-0.0 as one key and NaN as unequal to itself; such
/// comparisons must go through bit patterns (time_bits_eq) or a tolerance.
bool float_hinted_name(std::string_view token) {
  if (token.empty() || is_float_literal(token)) return false;
  if (std::isdigit(static_cast<unsigned char>(token.front())) != 0) return false;
  std::string lower;
  lower.reserve(token.size());
  for (const char c : token)
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  // The hint must be a whole word segment (snake_case or camelCase bounded),
  // or "generations" would match "ratio".
  const auto is_alpha = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0;
  };
  const auto is_upper = [](char c) {
    return std::isupper(static_cast<unsigned char>(c)) != 0;
  };
  for (const std::string_view hint : {"scale", "ratio", "factor"}) {
    for (std::size_t pos = lower.find(hint); pos != std::string::npos;
         pos = lower.find(hint, pos + 1)) {
      const std::size_t end = pos + hint.size();
      const bool left_ok =
          pos == 0 || !is_alpha(lower[pos - 1]) || is_upper(token[pos]);
      const bool right_ok =
          end == lower.size() || !is_alpha(lower[end]) || is_upper(token[end]);
      if (left_ok && right_ok) return true;
    }
  }
  return false;
}

void check_float_eq(const RuleContext& ctx) {
  const std::string_view text = ctx.scrubbed;
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    const bool eq = text[i] == '=' && text[i + 1] == '=';
    const bool ne = text[i] == '!' && text[i + 1] == '=';
    if (!eq && !ne) continue;
    if (i > 0 && (text[i - 1] == '=' || text[i - 1] == '<' || text[i - 1] == '>' ||
                  text[i - 1] == '!'))
      continue;
    if (i + 2 < text.size() && text[i + 2] == '=') continue;
    const std::size_t lhs_end = [&] {
      std::size_t j = i;
      while (j > 0 && (text[j - 1] == ' ' || text[j - 1] == '\t')) --j;
      return j;
    }();
    const std::string lhs = number_token_before(text, lhs_end);
    const std::string rhs = number_token_after(text, skip_spaces(text, i + 2));
    if (is_float_literal(lhs) || is_float_literal(rhs)) {
      ctx.report(i, "float-eq",
                 std::string(eq ? "==" : "!=") +
                     " against a floating-point literal; compare via a named sentinel "
                     "constant or an explicit tolerance helper");
    } else if (float_hinted_name(lhs) || float_hinted_name(rhs)) {
      // Variable-vs-variable equality in a cache-key position: either
      // operand is named like a floating-point multiplier.
      ctx.report(i, "float-eq",
                 std::string(eq ? "==" : "!=") + " between '" + lhs + "' and '" + rhs +
                     "'; a scale/ratio/factor is a floating-point cache key — compare "
                     "bit patterns (time_bits_eq) or use a tolerance helper");
    }
  }
}

void check_discarded_error(const RuleContext& ctx,
                           const std::vector<std::string>& nodiscard_names) {
  std::istringstream stream{std::string(ctx.scrubbed)};
  std::string line;
  std::size_t line_number = 0;
  std::size_t offset = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::size_t line_offset = offset;
    offset += line.size() + 1;
    // Bare expression statement: `[obj.]name(...);` with nothing else.
    const std::size_t paren = line.find('(');
    if (paren == std::string::npos) continue;
    std::string trimmed = line;
    const std::size_t last = trimmed.find_last_not_of(" \t");
    if (last == std::string::npos || trimmed[last] != ';') continue;
    const std::string name = ident_before(line, paren);
    if (name.empty()) continue;
    const bool tracked = name.compare(0, 4, "try_") == 0 ||
                         std::find(nodiscard_names.begin(), nodiscard_names.end(), name) !=
                             nodiscard_names.end();
    if (!tracked) continue;
    // Everything before the callee must be whitespace or an object path —
    // an `=`, `return`, or comparison anywhere means the result is used.
    std::size_t start = 0;
    std::size_t name_begin = paren;
    while (name_begin > 0 && is_ident_char(line[name_begin - 1])) --name_begin;
    bool bare = true;
    for (start = 0; start < name_begin; ++start) {
      const char c = line[start];
      if (c == ' ' || c == '\t' || c == '.' || c == ':' || c == '>' || c == '-' ||
          is_ident_char(c))
        continue;
      bare = false;
      break;
    }
    if (line.find("return") != std::string::npos || line.find('=') < paren) bare = false;
    if (bare)
      ctx.report(line_offset + name_begin, "discarded-error",
                 "result of '" + name +
                     "' is discarded; it reports failure through its return value");
  }
}

void check_raw_io(const RuleContext& ctx) {
  // Global-qualified POSIX I/O calls (`::write(...)`) bypass the checked
  // wrappers in src/service/io.hpp, which retry EINTR, loop partial writes
  // and classify errno.  Member qualifications (istream::read) have an
  // identifier before the `::` and are skipped.
  static const std::string_view kCalls[] = {"write", "read", "send", "recv"};
  const std::string_view text = ctx.scrubbed;
  for (const std::string_view name : kCalls) {
    std::size_t pos = 0;
    while ((pos = text.find(name, pos)) != std::string_view::npos) {
      const std::size_t end = pos + name.size();
      const bool global_qualified =
          pos >= 2 && text[pos - 1] == ':' && text[pos - 2] == ':' &&
          (pos == 2 || (!is_ident_char(text[pos - 3]) && text[pos - 3] != ':'));
      const bool name_ends = end >= text.size() || !is_ident_char(text[end]);
      const std::size_t cursor = skip_spaces(text, end);
      const bool is_call = cursor < text.size() && text[cursor] == '(';
      if (global_qualified && name_ends && is_call)
        ctx.report(pos, "raw-io",
                   "raw ::" + std::string(name) +
                       " call; use the checked rtp::io wrappers (src/service/io.hpp), "
                       "which retry EINTR and classify errno");
      pos = end;
    }
  }
}

void check_include_hygiene(const RuleContext& ctx, std::string_view source, bool is_header) {
  const std::string_view text = ctx.scrubbed;
  if (is_header && text.find("#pragma once") == std::string_view::npos)
    ctx.report(0, "include-hygiene", "header is missing #pragma once");
  std::size_t pos = 0;
  while ((pos = text.find("#include", pos)) != std::string_view::npos) {
    // The directive is located in scrubbed text (so commented-out includes
    // stay silent), but quoted paths are string literals the scrubber blanks
    // — quotes included — so the path itself is read from the original
    // source (scrub is offset-preserving).
    const std::size_t cursor = skip_spaces(source, pos + 8);
    if (source.compare(cursor, 4, "\"../") == 0 || source.compare(cursor, 3, "\"..") == 0)
      ctx.report(pos, "include-hygiene",
                 "parent-relative #include; use a project-root-relative path");
    if (source.compare(cursor, 6, "<bits/") == 0)
      ctx.report(pos, "include-hygiene",
                 "#include <bits/...> reaches into libstdc++ internals");
    pos += 8;
  }
}

bool allowlisted(const Diagnostic& d, const std::vector<AllowEntry>& allowlist) {
  for (const AllowEntry& entry : allowlist) {
    if (entry.rule != "*" && entry.rule != d.rule) continue;
    if (!has_suffix(d.path, entry.path_suffix)) continue;
    if (entry.line != 0 && entry.line != d.line) continue;
    return true;
  }
  return false;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("rtlint: cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool lintable(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

void collect_files(const std::filesystem::path& root, std::vector<std::string>& files) {
  namespace fs = std::filesystem;
  if (fs::is_regular_file(root)) {
    if (lintable(root)) files.push_back(root.string());
    return;
  }
  if (!fs::is_directory(root)) throw std::runtime_error("rtlint: no such path: " + root.string());
  for (fs::directory_iterator it(root), end; it != end; ++it) {
    const std::string name = it->path().filename().string();
    if (name.empty() || name[0] == '.' || name.compare(0, 5, "build") == 0) continue;
    if (it->is_directory())
      collect_files(it->path(), files);
    else if (it->is_regular_file() && lintable(it->path()))
      files.push_back(it->path().string());
  }
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kRules = {
      "nondeterministic-source", "unordered-iter", "float-eq", "discarded-error",
      "include-hygiene", "raw-io",
  };
  return kRules;
}

std::string scrub(std::string_view source) {
  std::string out(source);
  enum class State { Code, LineComment, BlockComment, String, Char, RawString };
  State state = State::Code;
  std::string raw_delimiter;
  for (std::size_t i = 0; i < source.size();) {
    const char c = source[i];
    switch (state) {
      case State::Code:
        if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
          state = State::LineComment;
          out[i] = out[i + 1] = ' ';
          i += 2;
        } else if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
          state = State::BlockComment;
          out[i] = out[i + 1] = ' ';
          i += 2;
        } else if (c == 'R' && i + 1 < source.size() && source[i + 1] == '"' &&
                   (i == 0 || !is_ident_char(source[i - 1]))) {
          const std::size_t open = source.find('(', i + 2);
          if (open == std::string_view::npos) return out;
          raw_delimiter = ")" + std::string(source.substr(i + 2, open - i - 2)) + "\"";
          for (std::size_t j = i; j <= open; ++j) out[j] = ' ';
          state = State::RawString;
          i = open + 1;
        } else if (c == '"') {
          state = State::String;
          out[i] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::Char;
          out[i] = ' ';
          ++i;
        } else {
          ++i;
        }
        break;
      case State::LineComment:
        if (c == '\n')
          state = State::Code;
        else
          out[i] = ' ';
        ++i;
        break;
      case State::BlockComment:
        if (c == '*' && i + 1 < source.size() && source[i + 1] == '/') {
          out[i] = out[i + 1] = ' ';
          state = State::Code;
          i += 2;
        } else {
          if (c != '\n') out[i] = ' ';
          ++i;
        }
        break;
      case State::String:
      case State::Char: {
        const char terminator = state == State::String ? '"' : '\'';
        if (c == terminator) {
          out[i] = ' ';
          state = State::Code;
          ++i;
        } else {
          const std::size_t n = escape_len(source, i);
          for (std::size_t j = 0; j < n; ++j)
            if (source[i + j] != '\n') out[i + j] = ' ';
          i += n;
        }
        break;
      }
      case State::RawString:
        if (source.compare(i, raw_delimiter.size(), raw_delimiter) == 0) {
          for (std::size_t j = 0; j < raw_delimiter.size(); ++j) out[i + j] = ' ';
          i += raw_delimiter.size();
          state = State::Code;
        } else {
          if (c != '\n') out[i] = ' ';
          ++i;
        }
        break;
    }
  }
  return out;
}

std::vector<AllowEntry> parse_allowlist(std::string_view text) {
  std::vector<AllowEntry> out;
  std::istringstream stream{std::string(text)};
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);
    std::istringstream fields(line);
    std::string rule, target;
    if (!(fields >> rule)) continue;  // blank
    if (!(fields >> target))
      throw std::runtime_error("allowlist line " + std::to_string(line_number) +
                               ": expected '<rule> <path-suffix>[:<line>]'");
    AllowEntry entry;
    entry.rule = rule;
    const std::size_t colon = target.rfind(':');
    if (colon != std::string::npos &&
        target.find_first_not_of("0123456789", colon + 1) == std::string::npos &&
        colon + 1 < target.size()) {
      entry.path_suffix = target.substr(0, colon);
      entry.line = static_cast<std::size_t>(std::stoul(target.substr(colon + 1)));
    } else {
      entry.path_suffix = target;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<std::string> collect_nodiscard_names(std::string_view source) {
  const std::string scrubbed = scrub(source);
  std::vector<std::string> out;
  std::istringstream stream(scrubbed);
  std::string line;
  while (std::getline(stream, line)) {
    const auto harvest = [&](std::size_t type_end) {
      std::size_t cursor = skip_spaces(line, type_end);
      std::size_t name_end = cursor;
      while (name_end < line.size() && is_ident_char(line[name_end])) ++name_end;
      if (name_end == cursor) return;
      const std::size_t after = skip_spaces(line, name_end);
      if (after < line.size() && line[after] == '(')
        out.push_back(line.substr(cursor, name_end - cursor));
    };
    if (const std::size_t pos = line.find("[[nodiscard]]"); pos != std::string::npos) {
      // Skip the return type: first identifier run after the attribute is
      // the type; the one before '(' is the name.
      const std::size_t paren = line.find('(', pos);
      if (paren != std::string::npos) {
        const std::string name = ident_before(line, paren);
        if (!name.empty()) out.push_back(name);
      }
    }
    if (const std::size_t pos = line.find("std::optional"); pos != std::string::npos) {
      std::size_t i = line.find('<', pos);
      if (i == std::string::npos) continue;
      int depth = 0;
      for (; i < line.size(); ++i) {
        if (line[i] == '<') ++depth;
        if (line[i] == '>' && --depth == 0) break;
      }
      if (depth == 0) harvest(i + 1);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Diagnostic> lint_source(const std::string& path, std::string_view source,
                                    const LintOptions& options,
                                    std::string_view pair_header) {
  const std::string scrubbed = scrub(source);
  const Annotations annotations = parse_annotations(source, scrubbed);
  const LineIndex lines(scrubbed);

  std::set<std::string> unordered_variables;
  std::set<std::string> unordered_functions;
  collect_unordered_names(scrubbed, unordered_variables, unordered_functions);
  if (!pair_header.empty())
    collect_unordered_names(scrub(pair_header), unordered_variables, unordered_functions);

  std::vector<Diagnostic> raw;
  const RuleContext ctx{path, scrubbed, lines, raw};
  check_nondeterministic_source(ctx);
  check_unordered_iter(ctx, unordered_variables, unordered_functions);
  check_float_eq(ctx);
  check_discarded_error(ctx, options.nodiscard_functions);
  check_include_hygiene(ctx, source, has_suffix(path, ".hpp") || has_suffix(path, ".h"));
  check_raw_io(ctx);

  std::vector<Diagnostic> out;
  for (Diagnostic& d : raw) {
    if (annotations.allows(d.rule, d.line)) continue;
    if (allowlisted(d, options.allowlist)) continue;
    out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.path, a.line, a.rule) < std::tie(b.path, b.line, b.rule);
  });
  return out;
}

std::vector<Diagnostic> lint_tree(const std::vector<std::string>& roots,
                                  LintOptions options) {
  std::vector<std::string> files;
  for (const std::string& root : roots) collect_files(root, files);
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::map<std::string, std::string> contents;
  for (const std::string& file : files) contents[file] = read_file(file);

  // Tree-wide pass: functions whose results must not be discarded are
  // declared in headers but called from anywhere.
  std::set<std::string> nodiscard;
  for (const auto& [file, text] : contents)
    for (std::string& name : collect_nodiscard_names(text)) nodiscard.insert(std::move(name));
  options.nodiscard_functions.assign(nodiscard.begin(), nodiscard.end());

  std::vector<Diagnostic> out;
  for (const auto& [file, text] : contents) {
    std::string_view pair_header;
    if (has_suffix(file, ".cpp") || has_suffix(file, ".cc")) {
      const std::filesystem::path header =
          std::filesystem::path(file).replace_extension(".hpp");
      const auto it = contents.find(header.string());
      if (it != contents.end()) pair_header = it->second;
    }
    std::vector<Diagnostic> diagnostics = lint_source(file, text, options, pair_header);
    out.insert(out.end(), std::make_move_iterator(diagnostics.begin()),
               std::make_move_iterator(diagnostics.end()));
  }
  return out;
}

std::string format_diagnostic(const Diagnostic& d) {
  return d.path + ":" + std::to_string(d.line) + ": [" + d.rule + "] " + d.message;
}

}  // namespace rtlint
