// rtlint — repo-specific determinism linter.
//
// The project's headline contract is reproducibility: byte-identical tables
// at any thread count, bit-identical cache-on/off service answers,
// policy-independent fault sequences.  Generic tools (compilers, clang-tidy,
// sanitizers) cannot check the conventions that contract rests on, so this
// tool does.  It scans a comment- and string-scrubbed view of every source
// file and enforces:
//
//   nondeterministic-source  no std::rand/srand/random_device/time(nullptr)/
//                            gettimeofday/... outside src/core/rng; all
//                            randomness must flow through a seeded rtp::Rng
//   unordered-iter           no range-for over a std::unordered_{map,set}
//                            (hash order is not part of any contract; an
//                            iteration that feeds results or output makes
//                            the answer depend on it)
//   float-eq                 no ==/!= against floating-point literals
//                            (exact-representation sentinels compare via
//                            named constants; everything else via an
//                            explicit tolerance helper), and no
//                            variable==variable where either name contains
//                            scale/ratio/factor — those are floating-point
//                            cache keys and must compare bit patterns
//                            (rtp::time_bits_eq) so ±0.0 stay distinct and
//                            NaN keys still hit
//   discarded-error          calls to try_*/std::optional-returning/
//                            [[nodiscard]]-annotated functions declared in
//                            this tree must not be discarded as bare
//                            expression statements
//   include-hygiene          headers carry #pragma once; no "../" relative
//                            includes; no <bits/...> internals
//   raw-io                   no global-qualified ::write/::read/::send/::recv
//                            calls outside the checked wrappers in
//                            src/service/io.hpp (which retry EINTR, loop
//                            partial transfers, and classify errno)
//
// Suppression is explicit and auditable: an inline
//   // rtlint: allow(<rule>) <justification>
// on the flagged line, or an entry in the allowlist file
// ("<rule> <path-suffix>[:<line>]").  Diagnostics print as
// "file:line: [rule] message" and the CLI exits non-zero if any survive.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rtlint {

struct Diagnostic {
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

struct AllowEntry {
  std::string rule;         // exact rule name, or "*"
  std::string path_suffix;  // matches if the diagnostic path ends with this
  std::size_t line = 0;     // 0 = any line
};

struct LintOptions {
  std::vector<AllowEntry> allowlist;
  /// Names of functions (declared anywhere in the linted tree) whose return
  /// value must not be discarded.  Populated by collect_nodiscard_names().
  std::vector<std::string> nodiscard_functions;
};

/// All rule names, for --list-rules and fixture tests.
const std::vector<std::string>& rule_names();

/// Replace comments and string/character literal contents with spaces,
/// preserving line structure, so rules never fire inside text.  Inline
/// `rtlint: allow(...)` annotations are honoured before scrubbing.
std::string scrub(std::string_view source);

/// Parse an allowlist file.  Lines: `<rule> <path-suffix>[:<line>]`,
/// blank lines and `#` comments ignored.  Throws std::runtime_error on a
/// malformed line.
std::vector<AllowEntry> parse_allowlist(std::string_view text);

/// Scan one file's contents for declarations of functions whose results
/// must not be discarded (`try_*` prefix, `std::optional<...>` return, or
/// an explicit [[nodiscard]]).  Used to seed LintOptions across the tree.
std::vector<std::string> collect_nodiscard_names(std::string_view source);

/// Lint one file.  `pair_header` optionally carries the contents of the
/// sibling header (same stem) so member declarations are visible when
/// linting a .cpp.
std::vector<Diagnostic> lint_source(const std::string& path, std::string_view source,
                                    const LintOptions& options,
                                    std::string_view pair_header = {});

/// Lint every .hpp/.cpp under `roots` (files or directories), in sorted
/// path order.  Handles pair-header lookup and tree-wide nodiscard
/// collection.  `options.allowlist` is respected.
std::vector<Diagnostic> lint_tree(const std::vector<std::string>& roots,
                                  LintOptions options);

/// "file:line: [rule] message"
std::string format_diagnostic(const Diagnostic& d);

}  // namespace rtlint
