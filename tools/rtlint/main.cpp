// rtlint CLI.  Usage:
//   rtlint [--allowlist FILE] [--list-rules] PATH...
//
// Lints every .hpp/.cpp under each PATH (file or directory) and prints one
// "file:line: [rule] message" per finding.  Exit status: 0 clean, 1
// findings, 2 usage/IO error.  With no --allowlist, `tools/rtlint.allow`
// relative to the current directory is used when present, so
// `build/tools/rtlint src` from the repo root picks up the repo allowlist.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rtlint/rtlint.hpp"

namespace {

int usage() {
  std::cerr << "usage: rtlint [--allowlist FILE] [--list-rules] PATH...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string allowlist_path;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allowlist") {
      if (i + 1 >= argc) return usage();
      allowlist_path = argv[++i];
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (list_rules) {
    for (const std::string& rule : rtlint::rule_names()) std::cout << rule << "\n";
    return 0;
  }
  if (roots.empty()) return usage();

  if (allowlist_path.empty() && std::filesystem::exists("tools/rtlint.allow"))
    allowlist_path = "tools/rtlint.allow";

  rtlint::LintOptions options;
  try {
    if (!allowlist_path.empty()) {
      std::ifstream in(allowlist_path);
      if (!in) {
        std::cerr << "rtlint: cannot read allowlist " << allowlist_path << "\n";
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      options.allowlist = rtlint::parse_allowlist(text.str());
    }
    const std::vector<rtlint::Diagnostic> diagnostics = rtlint::lint_tree(roots, options);
    for (const rtlint::Diagnostic& d : diagnostics)
      std::cout << rtlint::format_diagnostic(d) << "\n";
    if (!diagnostics.empty()) {
      std::cerr << "rtlint: " << diagnostics.size() << " finding(s)\n";
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "rtlint: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
