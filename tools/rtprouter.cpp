// rtprouter — session-key routing tier for a sharded rtpd cluster.
//
// Speaks the rtpd line protocol (src/service/protocol.hpp) on its front
// side and forwards each request line to one of N rtpd worker partitions
// by its `key=` routing field (src/service/router.hpp has the routing and
// failover rules).  Workers stay ordinary rtpds — they parse and ignore
// the key — so a keyed client works identically against a single rtpd and
// against a cluster behind this router.
//
//   # two partitions, the second with a warm standby; keyless lines go to
//   # partition 0:
//   ./rtpd --nodes 64 --mode tcp --port 7421 &
//   ./rtpd --nodes 64 --journal p1.rtpj --mode tcp --port 7422 --replicate-to 127.0.0.1:7500 &
//   ./rtpd --nodes 64 --journal s1.rtpj --follow 7500 --mode tcp --port 7423 &
//   ./rtprouter --partitions '127.0.0.1:7421;127.0.0.1:7422,127.0.0.1:7423' --mode tcp --port 7420
//
//   # drive it like any rtpd; STATS without a key merges the cluster:
//   printf 'SUBMIT 0 1 4 600 3600 key=a\nESTIMATE 1 key=a\nSTATS\nQUIT\n' |
//     ./rtpctl --servers 127.0.0.1:7420 --stdin
//
// The map can also come from a file (--map, the PartitionMap text format)
// and --map-dump prints the canonical form for inspection or rewriting.
//
// SIGINT/SIGTERM stop the accept loop and drain in-flight requests.
// SIGPIPE is ignored process-wide, as in rtpd: workers and clients may
// vanish mid-write, and the rtp::io wrappers turn EPIPE into an orderly
// disconnect.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "core/args.hpp"
#include "core/error.hpp"
#include "core/log.hpp"
#include "core/strings.hpp"
#include "service/io.hpp"
#include "service/migrate.hpp"
#include "service/router.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;
int g_wake_pipe[2] = {-1, -1};

extern "C" void on_signal(int sig) {
  g_signal = sig;
  if (g_wake_pipe[1] >= 0) {
    const char byte = 1;
    // rtlint: allow(raw-io) async-signal-safe raw write from the handler;
    // the io:: wrappers build strings and are off-limits here.
    (void)!::write(g_wake_pipe[1], &byte, 1);
  }
}

void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads must return so we can drain
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  struct sigaction ignore_pipe{};
  ignore_pipe.sa_handler = SIG_IGN;
  sigemptyset(&ignore_pipe.sa_mask);
  ::sigaction(SIGPIPE, &ignore_pipe, nullptr);
}

/// Build a map from the --partitions shorthand: partitions separated by
/// ';', each a ','-separated replica list in failover order.
rtp::PartitionMap map_from_flag(const std::string& spec, std::size_t default_partition) {
  rtp::PartitionMap map;
  map.default_partition = default_partition;
  for (const std::string_view group : rtp::split(spec, ';')) {
    std::vector<std::string> replicas;
    for (const std::string_view piece : rtp::split(group, ',')) {
      const std::string address(rtp::trim(piece));
      if (!address.empty()) replicas.push_back(address);
    }
    RTP_CHECK(!replicas.empty(), "--partitions: empty partition in '" + spec + "'");
    map.partitions.push_back(std::move(replicas));
  }
  map.validate();
  return map;
}

/// ','-separated address list flag ("h:1,h:2") → vector.
std::vector<std::string> addresses_from_flag(const std::string& spec) {
  std::vector<std::string> out;
  for (const std::string_view piece : rtp::split(spec, ',')) {
    const std::string address(rtp::trim(piece));
    if (!address.empty()) out.push_back(address);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    rtp::ArgParser args(argc, argv);
    args.add_option("map", "partition map file (RTPMAP1 text format)", "");
    args.add_option("partitions",
                    "inline map: partitions split by ';', replicas by ',' "
                    "(primary first), e.g. 'h:1;h:2,h:3'", "");
    args.add_option("default-partition",
                    "partition for keyless request lines (with --partitions)", "0");
    args.add_flag("map-dump", "print the canonical partition map and exit");
    args.add_option("mode", "stdin|tcp", "stdin");
    args.add_option("port", "TCP port (0 = ephemeral)", "0");
    args.add_option("threads", "TCP connection workers", "4");
    args.add_option("connect-timeout-ms", "backend connect timeout", "2000");
    args.add_option("read-timeout-ms", "backend response timeout", "5000");
    args.add_option("attempts", "forwarding tries per request (retries + failover)", "4");
    args.add_option("backoff-min-ms", "first busy-retry backoff", "50");
    args.add_option("backoff-max-ms", "backoff cap", "2000");
    args.add_option("seed", "backoff jitter seed", "1381258322");  // "RTPR"
    args.add_option("max-connections", "concurrent clients (0 = unbounded)", "64");
    args.add_option("peers",
                    "peer routers (','-separated host:port) to push new "
                    "partition maps to after a migration", "");
    args.add_option("spares",
                    "spare worker addresses REBALANCE may migrate the hottest "
                    "partition to (','-separated)", "");
    args.add_option("rebalance-interval",
                    "seconds between automatic rebalance passes (0 = off; "
                    "needs --spares)", "0");
    args.add_option("catchup-timeout-ms", "migration catch-up bound", "15000");
    args.add_option("drain-timeout-ms",
                    "migration drain window before rollback", "5000");
    args.add_option("pause-wait-ms",
                    "longest a request queues on a paused partition", "10000");
    args.add_flag("verbose", "progress logging to stderr");
    if (!args.parse()) return 0;
    if (args.flag("verbose")) rtp::set_log_level(rtp::LogLevel::Info);

    const std::string mode = args.str("mode");
    RTP_CHECK(mode == "stdin" || mode == "tcp", "--mode must be stdin or tcp");
    RTP_CHECK(args.str("map").empty() != args.str("partitions").empty(),
              "exactly one of --map and --partitions is required");

    rtp::PartitionMap map;
    if (!args.str("map").empty()) {
      std::ifstream in(args.str("map"), std::ios::binary);
      RTP_CHECK(in.good(), "cannot open --map file '" + args.str("map") + "'");
      std::ostringstream text;
      text << in.rdbuf();
      map = rtp::PartitionMap::load(text.str());
    } else {
      map = map_from_flag(args.str("partitions"),
                          static_cast<std::size_t>(args.integer("default-partition")));
    }
    if (args.flag("map-dump")) {
      std::cout << map.dump();
      std::cout.flush();
      RTP_CHECK(std::cout.good(), "--map-dump: write to stdout failed");
      return 0;
    }

    rtp::RouterOptions options;
    options.connect_timeout_ms =
        static_cast<std::uint32_t>(args.integer("connect-timeout-ms"));
    options.read_timeout_ms = static_cast<std::uint32_t>(args.integer("read-timeout-ms"));
    options.max_attempts = static_cast<std::uint32_t>(args.integer("attempts"));
    options.backoff_min_ms = static_cast<std::uint32_t>(args.integer("backoff-min-ms"));
    options.backoff_max_ms = static_cast<std::uint32_t>(args.integer("backoff-max-ms"));
    options.jitter_seed = static_cast<std::uint64_t>(args.integer("seed"));
    options.threads = static_cast<std::size_t>(args.integer("threads"));
    options.max_connections = static_cast<std::size_t>(args.integer("max-connections"));
    options.pause_wait_ms = static_cast<std::uint32_t>(args.integer("pause-wait-ms"));
    rtp::Router router(std::move(map), options);

    rtp::MigrationOptions migration;
    migration.connect_timeout_ms = options.connect_timeout_ms;
    migration.read_timeout_ms = options.read_timeout_ms;
    migration.catchup_timeout_ms =
        static_cast<std::uint32_t>(args.integer("catchup-timeout-ms"));
    migration.drain_timeout_ms =
        static_cast<std::uint32_t>(args.integer("drain-timeout-ms"));
    migration.peers = addresses_from_flag(args.str("peers"));
    migration.spares = addresses_from_flag(args.str("spares"));
    rtp::MigrationCoordinator coordinator(router, migration);
    router.attach_coordinator(&coordinator);

    // Automatic hot-partition rebalancing: every interval, migrate the
    // hottest partition to the next free spare.  Failures (no load yet, no
    // spare left, a migration already running) just wait for the next tick.
    const auto rebalance_interval =
        std::chrono::seconds(args.integer("rebalance-interval"));
    std::atomic<bool> rebalance_stop{false};
    std::mutex rebalance_mutex;
    std::condition_variable rebalance_cv;
    std::thread rebalancer;
    if (rebalance_interval.count() > 0 && mode == "tcp") {
      RTP_CHECK(!migration.spares.empty(), "--rebalance-interval needs --spares");
      rebalancer = std::thread([&] {
        std::unique_lock<std::mutex> lock(rebalance_mutex);
        while (!rebalance_cv.wait_for(lock, rebalance_interval,
                                      [&] { return rebalance_stop.load(); })) {
          lock.unlock();
          const rtp::MigrationReport report = coordinator.rebalance("");
          if (report.ok)
            rtp::log_info("rtprouter rebalanced partition ", report.partition,
                          " to ", report.to, " (map_version ", report.map_version,
                          ")");
          lock.lock();
        }
      });
    }
    const auto stop_rebalancer = [&] {
      if (!rebalancer.joinable()) return;
      {
        std::lock_guard<std::mutex> lock(rebalance_mutex);
        rebalance_stop.store(true);
      }
      rebalance_cv.notify_all();
      rebalancer.join();
    };

    RTP_CHECK(::pipe(g_wake_pipe) == 0, "cannot create signal wake pipe");
    install_signal_handlers();

    if (mode == "stdin") {
      router.serve_stream(std::cin, std::cout);
    } else {
      const std::uint16_t port =
          router.listen_on(static_cast<std::uint16_t>(args.integer("port")));
      std::cerr << "rtprouter listening on 127.0.0.1:" << port << "\n";
      std::thread watcher([&router] {
        char byte = 0;
        rtp::io::read_some(g_wake_pipe[0], &byte, 1);
        router.shutdown();
      });
      router.serve();
      const char byte = 1;
      rtp::io::write_all(g_wake_pipe[1], &byte, 1);
      watcher.join();
    }
    stop_rebalancer();

    if (g_signal != 0 || args.flag("verbose")) {
      const rtp::RouterStats stats = router.stats();
      std::cerr << "rtprouter "
                << (g_signal != 0 ? "drained after signal " + std::to_string(g_signal)
                                  : "final")
                << ": requests=" << stats.requests << " errors=" << stats.errors
                << " forwarded=" << stats.forwarded << " retries=" << stats.retries
                << " failovers=" << stats.failovers
                << " moved_redirects=" << stats.moved_redirects
                << " stale_retires=" << stats.stale_retires
                << " paused_waits=" << stats.paused_waits << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "rtprouter: " << e.what() << "\n";
    return 1;
  }
}
