// rtpctl — command-line RTP/1 client with retry and failover.
//
// Sends request lines to an rtpd fleet through rtp::ServiceClient
// (src/service/client.hpp): transport failures and "ERR code=readonly"
// answers fail over to the next address in --servers order, "ERR code=busy"
// retries the same server after a capped, deterministically jittered
// backoff.  Each server's answer line is printed to stdout.
//
//   # one request, positional tokens joined into the request line:
//   ./rtpctl --servers 127.0.0.1:7421 STATS
//   ./rtpctl --servers 127.0.0.1:7421,127.0.0.1:7422 ESTIMATE 17
//
//   # promote a follower after its primary died:
//   ./rtpctl --servers 127.0.0.1:7422 PROMOTE
//
//   # or stream request lines from stdin (one exchange per line):
//   head -n 100 anl.events | ./rtpctl --servers 127.0.0.1:7421 --stdin
//
// Exit status: 0 when every answer was OK, 2 when any answer was ERR, 1 on
// transport failure (no server produced a definitive answer) or usage
// errors.
#include <iostream>
#include <string>
#include <vector>

#include "core/args.hpp"
#include "core/error.hpp"
#include "service/client.hpp"

namespace {

/// Send one line; prints the answer and returns its OK/ERR verdict.
bool exchange(rtp::ServiceClient& client, const std::string& line) {
  const rtp::ClientReply reply = client.request(line);
  std::cout << reply.line << "\n";
  return reply.ok;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    rtp::ArgParser args(argc, argv);
    args.add_option("servers",
                    "comma-separated host:port list in failover order (primary first)",
                    "127.0.0.1:7421");
    args.add_option("attempts", "total tries per request across retry and failover", "4");
    args.add_option("connect-timeout-ms", "TCP connect timeout per attempt", "2000");
    args.add_option("read-timeout-ms", "response timeout per attempt", "5000");
    args.add_option("backoff-min-ms", "first retry backoff", "50");
    args.add_option("backoff-max-ms", "retry backoff cap", "2000");
    args.add_option("seed", "backoff jitter seed (reproducible retry timelines)",
                    "1381258307");
    args.add_flag("stdin", "read request lines from stdin instead of the command line");
    if (!args.parse()) return 0;

    rtp::ClientOptions options;
    options.max_attempts = static_cast<std::uint32_t>(args.integer("attempts"));
    options.connect_timeout_ms =
        static_cast<std::uint32_t>(args.integer("connect-timeout-ms"));
    options.read_timeout_ms =
        static_cast<std::uint32_t>(args.integer("read-timeout-ms"));
    options.backoff_min_ms = static_cast<std::uint32_t>(args.integer("backoff-min-ms"));
    options.backoff_max_ms = static_cast<std::uint32_t>(args.integer("backoff-max-ms"));
    options.jitter_seed = static_cast<std::uint64_t>(args.integer("seed"));

    std::vector<std::string> addresses;
    {
      const std::string servers = args.str("servers");
      std::size_t start = 0;
      while (start <= servers.size()) {
        const std::size_t comma = servers.find(',', start);
        const std::size_t end = comma == std::string::npos ? servers.size() : comma;
        if (end > start) addresses.push_back(servers.substr(start, end - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
    rtp::ServiceClient client(std::move(addresses), options);

    bool all_ok = true;
    if (args.flag("stdin")) {
      RTP_CHECK(args.positional().empty(),
                "--stdin and a positional request are mutually exclusive");
      std::string line;
      while (std::getline(std::cin, line)) {
        if (line.empty()) continue;
        if (!exchange(client, line)) all_ok = false;
      }
    } else {
      RTP_CHECK(!args.positional().empty(),
                "no request given (pass verb tokens, or --stdin)");
      std::string line;
      for (const std::string& token : args.positional()) {
        if (!line.empty()) line += ' ';
        line += token;
      }
      if (!exchange(client, line)) all_ok = false;
    }
    return all_ok ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "rtpctl: " << e.what() << "\n";
    return 1;
  }
}
