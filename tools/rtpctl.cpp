// rtpctl — command-line RTP/1 client with retry and failover.
//
// Sends request lines to an rtpd fleet through rtp::ServiceClient
// (src/service/client.hpp): transport failures and "ERR code=readonly"
// answers fail over to the next address in --servers order, "ERR code=busy"
// retries the same server after a capped, deterministically jittered
// backoff.  Each server's answer line is printed to stdout.
//
//   # one request, positional tokens joined into the request line:
//   ./rtpctl --servers 127.0.0.1:7421 STATS
//   ./rtpctl --servers 127.0.0.1:7421,127.0.0.1:7422 ESTIMATE 17
//
//   # machine-readable STATS (or any reply) for scripts and dashboards:
//   ./rtpctl --servers 127.0.0.1:7421 --json STATS
//
//   # promote a follower after its primary died:
//   ./rtpctl --servers 127.0.0.1:7422 PROMOTE
//
//   # live migration, through the router (moves key a's partition to the
//   # fresh follower on :7424), then inspect the new map:
//   ./rtpctl --servers 127.0.0.1:7420 MIGRATE key=a to=127.0.0.1:7424
//   ./rtpctl --servers 127.0.0.1:7420 --json MAPGET
//   # migrate the hottest partition to a configured spare:
//   ./rtpctl --servers 127.0.0.1:7420 REBALANCE
//
//   # or stream request lines from stdin (one exchange per line):
//   head -n 100 anl.events | ./rtpctl --servers 127.0.0.1:7421 --stdin
//
// --json renders each answer as one JSON object per line: an OK answer's
// key=value tail becomes {"ok":true,"address":...,"fields":{...}} (values
// that read as numbers stay numbers), an ERR answer becomes
// {"ok":false,"address":...,"line":N,"code":...,"msg":...}.
//
// Exit status separates protocol from transport so scripts can branch:
// 0 when every answer was OK, 2 when a server answered ERR (a definitive
// protocol-level refusal), 3 when no server produced a definitive answer
// (connect/read failures exhausted every attempt), 1 on usage errors.
#include <cstdio>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/args.hpp"
#include "core/error.hpp"
#include "core/strings.hpp"
#include "service/client.hpp"

namespace {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// True when `value` is a bare JSON-safe number ("5", "0.5", "-1e3") —
/// emitted unquoted so jq sees real numbers, not digit strings.
bool is_json_number(std::string_view value) {
  if (value.empty()) return false;
  for (const char c : value)
    if ((c < '0' || c > '9') && c != '.' && c != '-' && c != '+' && c != 'e' &&
        c != 'E')
      return false;
  try {
    rtp::parse_double(value, "json number probe");
  } catch (const rtp::Error&) {
    return false;
  }
  return true;
}

std::string json_value(std::string_view value) {
  if (is_json_number(value)) return std::string(value);
  return "\"" + json_escape(value) + "\"";
}

/// One reply line as a single-line JSON object (see the header comment).
std::string to_json(const rtp::ClientReply& reply) {
  std::string out = std::string("{\"ok\":") + (reply.ok ? "true" : "false") +
                    ",\"address\":\"" + json_escape(reply.address) + "\"";
  const auto tokens = rtp::split_whitespace(reply.line);
  if (reply.ok) {
    std::string fields;
    std::string detail;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::size_t eq = tokens[i].find('=');
      if (eq == std::string_view::npos) {
        if (!detail.empty()) detail += ' ';
        detail += tokens[i];
        continue;
      }
      if (!fields.empty()) fields += ',';
      fields += "\"" + json_escape(tokens[i].substr(0, eq)) +
                "\":" + json_value(tokens[i].substr(eq + 1));
    }
    if (!detail.empty()) out += ",\"detail\":\"" + json_escape(detail) + "\"";
    out += ",\"fields\":{" + fields + "}";
  } else {
    // ERR line=<n> code=<code> msg=<text to end of line>
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      if (rtp::starts_with(tokens[i], "line="))
        out += ",\"line\":" + json_value(tokens[i].substr(5));
      if (rtp::starts_with(tokens[i], "code="))
        out += ",\"code\":\"" + json_escape(tokens[i].substr(5)) + "\"";
      if (rtp::starts_with(tokens[i], "msg=")) {
        const std::size_t at = reply.line.find("msg=");
        out += ",\"msg\":\"" +
               json_escape(std::string_view(reply.line).substr(at + 4)) + "\"";
        break;  // msg= runs to end of line; later tokens belong to it
      }
    }
  }
  return out + "}";
}

/// Send one line; prints the answer and returns its OK/ERR verdict.
bool exchange(rtp::ServiceClient& client, const std::string& line, bool json) {
  const rtp::ClientReply reply = client.request(line);
  std::cout << (json ? to_json(reply) : reply.line) << "\n";
  return reply.ok;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    rtp::ArgParser args(argc, argv);
    args.add_option("servers",
                    "comma-separated host:port list in failover order (primary first)",
                    "127.0.0.1:7421");
    args.add_option("attempts", "total tries per request across retry and failover", "4");
    args.add_option("connect-timeout-ms", "TCP connect timeout per attempt", "2000");
    args.add_option("read-timeout-ms", "response timeout per attempt", "5000");
    args.add_option("backoff-min-ms", "first retry backoff", "50");
    args.add_option("backoff-max-ms", "retry backoff cap", "2000");
    args.add_option("seed", "backoff jitter seed (reproducible retry timelines)",
                    "1381258307");
    args.add_flag("stdin", "read request lines from stdin instead of the command line");
    args.add_flag("json", "print each answer as a JSON object instead of the raw line");
    if (!args.parse()) return 0;

    rtp::ClientOptions options;
    options.max_attempts = static_cast<std::uint32_t>(args.integer("attempts"));
    options.connect_timeout_ms =
        static_cast<std::uint32_t>(args.integer("connect-timeout-ms"));
    options.read_timeout_ms =
        static_cast<std::uint32_t>(args.integer("read-timeout-ms"));
    options.backoff_min_ms = static_cast<std::uint32_t>(args.integer("backoff-min-ms"));
    options.backoff_max_ms = static_cast<std::uint32_t>(args.integer("backoff-max-ms"));
    options.jitter_seed = static_cast<std::uint64_t>(args.integer("seed"));

    std::vector<std::string> addresses;
    {
      const std::string servers = args.str("servers");
      std::size_t start = 0;
      while (start <= servers.size()) {
        const std::size_t comma = servers.find(',', start);
        const std::size_t end = comma == std::string::npos ? servers.size() : comma;
        if (end > start) addresses.push_back(servers.substr(start, end - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
    rtp::ServiceClient client(std::move(addresses), options);
    const bool json = args.flag("json");
    if (args.flag("stdin")) {
      RTP_CHECK(args.positional().empty(),
                "--stdin and a positional request are mutually exclusive");
    } else {
      RTP_CHECK(!args.positional().empty(),
                "no request given (pass verb tokens, or --stdin)");
    }

    // Past this point the only rtp::Error source is ServiceClient::request
    // exhausting its attempts in transport — exit 3, distinct from a
    // definitive ERR answer (2) and from usage errors (1) above.
    try {
      bool all_ok = true;
      if (args.flag("stdin")) {
        std::string line;
        while (std::getline(std::cin, line)) {
          if (line.empty()) continue;
          if (!exchange(client, line, json)) all_ok = false;
        }
      } else {
        std::string line;
        for (const std::string& token : args.positional()) {
          if (!line.empty()) line += ' ';
          line += token;
        }
        if (!exchange(client, line, json)) all_ok = false;
      }
      return all_ok ? 0 : 2;
    } catch (const rtp::Error& e) {
      std::cerr << "rtpctl: " << e.what() << "\n";
      return 3;
    }
  } catch (const std::exception& e) {
    std::cerr << "rtpctl: " << e.what() << "\n";
    return 1;
  }
}
