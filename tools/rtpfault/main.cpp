// rtpfault — deterministic fault-injecting TCP proxy.
//
// Sits between an RTP/1 client and a server (or between a replication
// primary and a follower) and perturbs the byte stream on a scripted,
// reproducible schedule: delays, drops, torn writes, hard closes,
// partitions, slow trickles, seeded jitter.  See rtpfault/faults.hpp for
// the script grammar.
//
//   # chaos between a primary and a follower's replication port: swallow
//   # the 3rd primary→follower chunk (forcing a resync) and tear the 7th
//   # mid-frame:
//   ./rtpfault --listen 7510 --target 127.0.0.1:7500
//              --script 'up:drop@3 up:torn@7=5' --seed 7
//   ./rtpd ... --replicate-to 127.0.0.1:7510
//
//   # SIGPIPE regression: hard-close instead of delivering the server's
//   # reply, so the server writes into a dead socket:
//   ./rtpfault --listen 7511 --target 127.0.0.1:7421 --script 'down:close@1'
//
// The proxy is single-threaded and applies faults inline (a delay on one
// connection stalls the others too — acceptable for a chaos tool that
// proxies one link).  All randomness comes from --seed via src/core/rng,
// so a (script, seed) pair replays the identical timeline.  On SIGINT /
// SIGTERM it prints chunk and fault counters to stderr and exits.
#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/args.hpp"
#include "core/error.hpp"
#include "core/log.hpp"
#include "rtpfault/faults.hpp"
#include "service/io.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
extern "C" void on_signal(int) { g_stop = 1; }

struct Link {
  int client_fd = -1;  ///< downstream (the proxied client)
  int server_fd = -1;  ///< upstream (the real server)
};

void close_link(Link& link) {
  if (link.client_fd >= 0) ::close(link.client_fd);
  if (link.server_fd >= 0) ::close(link.server_fd);
  link.client_fd = -1;
  link.server_fd = -1;
}

/// Forward one just-received chunk per the schedule's verdict.  Returns
/// false when the link must be torn down.
bool forward_chunk(Link& link, rtpfault::Direction direction, const char* data,
                   std::size_t len, rtpfault::Schedule& schedule, bool verbose) {
  const rtpfault::Action action = schedule.next(direction);
  const char* name = direction == rtpfault::Direction::Up ? "up" : "down";
  if (action.stall_ms > 0) {
    if (verbose)
      rtp::log_info("rtpfault: partition ", action.stall_ms, "ms at ", name, " chunk ",
                    schedule.chunks_seen(direction));
    std::this_thread::sleep_for(std::chrono::milliseconds(action.stall_ms));
  }
  if (action.delay_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
  if (action.drop) {
    if (verbose)
      rtp::log_info("rtpfault: ", action.close ? "close" : "drop", " at ", name,
                    " chunk ", schedule.chunks_seen(direction));
    return !action.close;
  }
  const int out_fd =
      direction == rtpfault::Direction::Up ? link.server_fd : link.client_fd;
  std::size_t limit = len;
  if (action.torn_bytes < limit) {
    limit = static_cast<std::size_t>(action.torn_bytes);
    if (verbose)
      rtp::log_info("rtpfault: torn write ", limit, "/", len, " bytes at ", name,
                    " chunk ", schedule.chunks_seen(direction));
  }
  if (action.slow_bytes > 0) {
    for (std::size_t off = 0; off < limit;) {
      const std::size_t piece =
          limit - off < action.slow_bytes ? limit - off
                                          : static_cast<std::size_t>(action.slow_bytes);
      if (!rtp::io::send_all(out_fd, data + off, piece).ok()) return false;
      off += piece;
      if (off < limit) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  } else if (!rtp::io::send_all(out_fd, data, limit).ok()) {
    return false;
  }
  return !action.close;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    rtp::ArgParser args(argc, argv);
    args.add_option("listen", "port to accept proxied clients on (0 = ephemeral)", "0");
    args.add_option("target", "host:port the proxy forwards to", "127.0.0.1:7421");
    args.add_option("script", "fault schedule (see rtpfault/faults.hpp)", "");
    args.add_option("seed", "jitter RNG seed", "1381258310");
    args.add_option("connect-timeout-ms", "upstream connect timeout", "2000");
    args.add_flag("verbose", "log every fired fault to stderr");
    if (!args.parse()) return 0;
    const bool verbose = args.flag("verbose");
    rtp::set_log_level(verbose ? rtp::LogLevel::Info : rtp::LogLevel::Warn);

    std::string target_host;
    std::uint16_t target_port = 0;
    {
      std::string error;
      RTP_CHECK(rtp::io::split_hostport(args.str("target"), &target_host, &target_port,
                                        &error),
                "--target: " + error);
    }
    rtpfault::Schedule schedule(rtpfault::parse_script(args.str("script")),
                                static_cast<std::uint64_t>(args.integer("seed")));
    const std::uint32_t connect_timeout_ms =
        static_cast<std::uint32_t>(args.integer("connect-timeout-ms"));

    const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    RTP_CHECK(listen_fd >= 0, std::string("socket: ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(args.integer("listen")));
    RTP_CHECK(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
              std::string("bind: ") + std::strerror(errno));
    RTP_CHECK(::listen(listen_fd, 4) == 0,
              std::string("listen: ") + std::strerror(errno));
    socklen_t addr_len = sizeof(addr);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
    std::cerr << "rtpfault listening on 127.0.0.1:" << ntohs(addr.sin_port) << " -> "
              << target_host << ":" << target_port << "\n";

    struct sigaction sa{};
    sa.sa_handler = on_signal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    // Peers hard-close by design here; EPIPE must reach the io wrappers.
    struct sigaction ignore_pipe{};
    ignore_pipe.sa_handler = SIG_IGN;
    sigemptyset(&ignore_pipe.sa_mask);
    ::sigaction(SIGPIPE, &ignore_pipe, nullptr);

    std::vector<Link> links;
    std::uint64_t accepted = 0;
    while (g_stop == 0) {
      std::vector<pollfd> fds;
      fds.push_back({listen_fd, POLLIN, 0});
      for (const Link& link : links) {
        fds.push_back({link.client_fd, POLLIN, 0});
        fds.push_back({link.server_fd, POLLIN, 0});
      }
      // `fds` describes exactly this many links; anything accepted below
      // joins the poll set on the next iteration.
      const std::size_t polled = links.size();
      const int ready = ::poll(fds.data(), fds.size(), 200);
      if (ready < 0) {
        if (errno == EINTR) continue;
        rtp::fail(std::string("poll: ") + std::strerror(errno));
      }
      if (ready == 0) continue;

      if ((fds[0].revents & POLLIN) != 0) {
        const int client = ::accept(listen_fd, nullptr, nullptr);
        if (client >= 0) {
          std::string error;
          const int server =
              rtp::io::dial_tcp(target_host, target_port, connect_timeout_ms, &error);
          if (server < 0) {
            rtp::log_warn("rtpfault: upstream dial failed: ", error);
            ::close(client);
          } else {
            links.push_back({client, server});
            ++accepted;
            if (verbose) rtp::log_info("rtpfault: link #", accepted, " up");
          }
        }
      }

      // Pump every readable fd.  Faults apply inline; a dead side tears
      // down the whole link (this proxy never half-closes).  Dead links are
      // only marked here and erased after the pass: erasing mid-loop would
      // shift `links` out of step with the `fds` it was polled as.
      for (std::size_t i = 0; i < polled; ++i) {
        Link& link = links[i];
        const pollfd& client_poll = fds[1 + 2 * i];
        const pollfd& server_poll = fds[2 + 2 * i];
        bool alive = true;
        for (int side = 0; side < 2 && alive; ++side) {
          const pollfd& p = side == 0 ? client_poll : server_poll;
          if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
          const rtpfault::Direction direction =
              side == 0 ? rtpfault::Direction::Up : rtpfault::Direction::Down;
          char chunk[65536];
          const rtp::io::IoResult r = rtp::io::recv_some(p.fd, chunk, sizeof(chunk));
          if (!r.ok() || r.bytes == 0) {
            alive = false;
          } else {
            alive = forward_chunk(link, direction, chunk, r.bytes, schedule, verbose);
          }
        }
        if (!alive) {
          if (verbose) rtp::log_info("rtpfault: link down");
          close_link(link);
          link.client_fd = -1;  // erased below, after the fds mapping dies
        }
      }
      links.erase(std::remove_if(links.begin(), links.end(),
                                 [](const Link& l) { return l.client_fd < 0; }),
                  links.end());
    }

    for (Link& link : links) close_link(link);
    ::close(listen_fd);
    std::cerr << "rtpfault done: links=" << accepted
              << " up_chunks=" << schedule.chunks_seen(rtpfault::Direction::Up)
              << " down_chunks=" << schedule.chunks_seen(rtpfault::Direction::Down)
              << " faults=" << schedule.faults_fired() << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "rtpfault: " << e.what() << "\n";
    return 1;
  }
}
