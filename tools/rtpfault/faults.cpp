#include "rtpfault/faults.hpp"

#include "core/error.hpp"
#include "core/strings.hpp"

namespace rtpfault {
namespace {

/// Parse a non-negative decimal or die naming the script token.
std::uint64_t parse_number(std::string_view text, std::string_view token) {
  std::uint64_t value = 0;
  if (text.empty()) rtp::fail("rtpfault script: empty number in '" + std::string(token) + "'");
  for (const char c : text) {
    if (c < '0' || c > '9')
      rtp::fail("rtpfault script: bad number '" + std::string(text) + "' in '" +
                std::string(token) + "'");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10)
      rtp::fail("rtpfault script: number overflow in '" + std::string(token) + "'");
    value = value * 10 + digit;
  }
  return value;
}

Rule parse_rule(std::string_view token) {
  Rule rule;
  std::string_view rest = token;
  if (rtp::starts_with(rest, "up:")) {
    rule.direction = Direction::Up;
    rest = rest.substr(3);
  } else if (rtp::starts_with(rest, "down:")) {
    rule.direction = Direction::Down;
    rest = rest.substr(5);
  }

  std::string_view arg;
  bool have_arg = false;
  const std::size_t eq = rest.find('=');
  if (eq != std::string_view::npos) {
    arg = rest.substr(eq + 1);
    rest = rest.substr(0, eq);
    have_arg = true;
  }
  std::string_view chunk;
  bool have_chunk = false;
  const std::size_t at = rest.find('@');
  if (at != std::string_view::npos) {
    chunk = rest.substr(at + 1);
    rest = rest.substr(0, at);
    have_chunk = true;
  }

  struct Spec {
    std::string_view name;
    Fault fault;
    bool needs_chunk;
    bool needs_arg;
  };
  static constexpr Spec kSpecs[] = {
      {"delay", Fault::Delay, true, true},   {"drop", Fault::Drop, true, false},
      {"torn", Fault::Torn, true, true},     {"close", Fault::Close, true, false},
      {"partition", Fault::Partition, true, true},
      {"slow", Fault::Slow, true, true},     {"jitter", Fault::Jitter, false, true},
  };
  const Spec* spec = nullptr;
  for (const Spec& candidate : kSpecs)
    if (rest == candidate.name) spec = &candidate;
  if (spec == nullptr)
    rtp::fail("rtpfault script: unknown fault '" + std::string(rest) + "' in '" +
              std::string(token) + "'");
  if (spec->needs_chunk != have_chunk)
    rtp::fail("rtpfault script: '" + std::string(spec->name) +
              (spec->needs_chunk ? "' needs a '@<chunk>'" : "' takes no '@<chunk>'") +
              " in '" + std::string(token) + "'");
  if (spec->needs_arg != have_arg)
    rtp::fail("rtpfault script: '" + std::string(spec->name) +
              (spec->needs_arg ? "' needs an '=<arg>'" : "' takes no '=<arg>'") +
              " in '" + std::string(token) + "'");

  rule.fault = spec->fault;
  if (have_chunk) {
    rule.chunk = parse_number(chunk, token);
    if (rule.chunk == 0) rtp::fail("rtpfault script: chunks are 1-based in '" +
                                   std::string(token) + "'");
  }
  if (have_arg) rule.arg = parse_number(arg, token);
  if (rule.fault == Fault::Torn && rule.arg == 0)
    rtp::fail("rtpfault script: torn needs at least 1 byte in '" + std::string(token) +
              "'");
  return rule;
}

}  // namespace

std::vector<Rule> parse_script(std::string_view script) {
  std::vector<Rule> rules;
  std::string normalized(script);
  for (char& c : normalized)
    if (c == ',') c = ' ';
  for (const std::string_view token : rtp::split_whitespace(normalized))
    rules.push_back(parse_rule(token));
  return rules;
}

Schedule::Schedule(std::vector<Rule> rules, std::uint64_t seed)
    : rules_(std::move(rules)), rng_(seed) {}

std::uint64_t Schedule::chunks_seen(Direction direction) const {
  return direction == Direction::Up ? up_chunks_ : down_chunks_;
}

Action Schedule::next(Direction direction) {
  RTP_CHECK(direction != Direction::Both, "next() takes a concrete direction");
  std::uint64_t& counter = direction == Direction::Up ? up_chunks_ : down_chunks_;
  const std::uint64_t chunk = ++counter;

  Action action;
  for (const Rule& rule : rules_) {
    if (rule.direction != Direction::Both && rule.direction != direction) continue;
    if (rule.fault == Fault::Jitter) {
      // Every-chunk rule: one deterministic draw per matching chunk.
      if (rule.arg > 0) {
        action.delay_ms += static_cast<std::uint64_t>(
            rng_.uniform(0.0, static_cast<double>(rule.arg)));
        ++faults_fired_;
      }
      continue;
    }
    if (rule.chunk != chunk) continue;
    ++faults_fired_;
    switch (rule.fault) {
      case Fault::Delay:
        action.delay_ms += rule.arg;
        break;
      case Fault::Drop:
        action.drop = true;
        break;
      case Fault::Torn:
        action.torn_bytes = rule.arg;
        action.close = true;
        break;
      case Fault::Close:
        action.drop = true;
        action.close = true;
        break;
      case Fault::Partition:
        action.stall_ms += rule.arg;
        break;
      case Fault::Slow:
        action.slow_bytes = rule.arg;
        break;
      case Fault::Jitter:
        break;  // handled above
    }
  }
  return action;
}

std::string describe(const Rule& rule) {
  std::string out;
  if (rule.direction == Direction::Up) out += "up:";
  if (rule.direction == Direction::Down) out += "down:";
  switch (rule.fault) {
    case Fault::Delay: out += "delay"; break;
    case Fault::Drop: out += "drop"; break;
    case Fault::Torn: out += "torn"; break;
    case Fault::Close: out += "close"; break;
    case Fault::Partition: out += "partition"; break;
    case Fault::Slow: out += "slow"; break;
    case Fault::Jitter: out += "jitter"; break;
  }
  if (rule.chunk > 0) out += "@" + std::to_string(rule.chunk);
  const bool has_arg = rule.fault == Fault::Delay || rule.fault == Fault::Torn ||
                       rule.fault == Fault::Partition || rule.fault == Fault::Slow ||
                       rule.fault == Fault::Jitter;
  if (has_arg) out += "=" + std::to_string(rule.arg);
  return out;
}

}  // namespace rtpfault
