// rtpfault rule engine: deterministic fault schedules for the TCP proxy.
//
// A fault script is a whitespace- or comma-separated list of rules.  Each
// rule names a fault, the 1-based chunk it fires on (a "chunk" is one
// recv() worth of bytes on one direction of the proxied connection), and an
// optional argument:
//
//   [up:|down:]<fault>@<chunk>[=<arg>]     one-shot, fires on chunk N
//   [up:|down:]jitter=<ms>                 every chunk, uniform [0, ms)
//
//   delay@N=MS      hold chunk N for MS milliseconds, then forward it
//   drop@N          swallow chunk N (bytes vanish; the stream continues)
//   torn@N=K        forward only the first K bytes of chunk N, then
//                   hard-close both sides (a torn write mid-frame)
//   close@N         hard-close both sides instead of forwarding chunk N
//   partition@N=MS  on chunk N, stall the whole connection (both
//                   directions) for MS, then forward normally
//   slow@N=BYTES    trickle chunk N out BYTES bytes at a time
//
// Directions are named from the proxied client's point of view: `up:` rules
// fire on client→server chunks, `down:` on server→client chunks; a rule
// with no prefix fires on either direction (each direction counts its own
// chunks).  Chunk counters are global to the proxy, not per connection, so
// a schedule keeps advancing across the reconnects it provokes.
//
// Every random draw (jitter) comes from a seeded rtp::Rng, so a given
// (script, seed) pair replays the identical fault timeline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/rng.hpp"

namespace rtpfault {

enum class Direction { Up, Down, Both };
enum class Fault { Delay, Drop, Torn, Close, Partition, Slow, Jitter };

struct Rule {
  Direction direction = Direction::Both;
  Fault fault = Fault::Delay;
  std::uint64_t chunk = 0;  ///< 1-based trigger chunk; 0 for every-chunk rules
  std::uint64_t arg = 0;    ///< ms, bytes, … per the fault kind
};

/// Parse a fault script; throws rtp::Error naming the bad token.
std::vector<Rule> parse_script(std::string_view script);

/// What the proxy must do with one just-received chunk.
struct Action {
  bool drop = false;            ///< swallow the chunk
  bool close = false;           ///< hard-close both sides (after torn_bytes)
  std::uint64_t delay_ms = 0;   ///< sleep before forwarding (delay + jitter)
  std::uint64_t stall_ms = 0;   ///< partition: stall both directions first
  /// Forward only this many bytes (then close); SIZE_MAX = the whole chunk.
  std::uint64_t torn_bytes = UINT64_MAX;
  std::uint64_t slow_bytes = 0;  ///< trickle granularity; 0 = one write
};

/// Stateful schedule: counts chunks per direction and resolves the rules
/// (and jitter draws) that fire on each.  Counters survive reconnects.
class Schedule {
 public:
  Schedule(std::vector<Rule> rules, std::uint64_t seed);

  /// Record the arrival of the next chunk on `direction` and return what to
  /// do with it.  `Direction::Both` is not a valid argument.
  Action next(Direction direction);

  std::uint64_t chunks_seen(Direction direction) const;
  std::uint64_t faults_fired() const { return faults_fired_; }

 private:
  std::vector<Rule> rules_;
  rtp::Rng rng_;
  std::uint64_t up_chunks_ = 0;
  std::uint64_t down_chunks_ = 0;
  std::uint64_t faults_fired_ = 0;
};

/// Human-readable rule echo for --verbose and tests.
std::string describe(const Rule& rule);

}  // namespace rtpfault
