# Empty dependencies file for test_search_eval.
# This may be replaced when dependencies are built.
