file(REMOVE_RECURSE
  "CMakeFiles/test_search_eval.dir/test_search_eval.cpp.o"
  "CMakeFiles/test_search_eval.dir/test_search_eval.cpp.o.d"
  "test_search_eval"
  "test_search_eval.pdb"
  "test_search_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
