file(REMOVE_RECURSE
  "CMakeFiles/test_search_codec.dir/test_search_codec.cpp.o"
  "CMakeFiles/test_search_codec.dir/test_search_codec.cpp.o.d"
  "test_search_codec"
  "test_search_codec.pdb"
  "test_search_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
