# Empty dependencies file for test_predict_recording.
# This may be replaced when dependencies are built.
