file(REMOVE_RECURSE
  "CMakeFiles/test_predict_recording.dir/test_predict_recording.cpp.o"
  "CMakeFiles/test_predict_recording.dir/test_predict_recording.cpp.o.d"
  "test_predict_recording"
  "test_predict_recording.pdb"
  "test_predict_recording[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predict_recording.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
