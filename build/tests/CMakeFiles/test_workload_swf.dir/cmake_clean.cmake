file(REMOVE_RECURSE
  "CMakeFiles/test_workload_swf.dir/test_workload_swf.cpp.o"
  "CMakeFiles/test_workload_swf.dir/test_workload_swf.cpp.o.d"
  "test_workload_swf"
  "test_workload_swf.pdb"
  "test_workload_swf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_swf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
