# Empty dependencies file for test_workload_swf.
# This may be replaced when dependencies are built.
