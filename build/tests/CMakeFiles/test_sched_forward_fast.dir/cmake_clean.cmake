file(REMOVE_RECURSE
  "CMakeFiles/test_sched_forward_fast.dir/test_sched_forward_fast.cpp.o"
  "CMakeFiles/test_sched_forward_fast.dir/test_sched_forward_fast.cpp.o.d"
  "test_sched_forward_fast"
  "test_sched_forward_fast.pdb"
  "test_sched_forward_fast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_forward_fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
