# Empty dependencies file for test_sched_forward_fast.
# This may be replaced when dependencies are built.
