file(REMOVE_RECURSE
  "CMakeFiles/test_exp_paper_values.dir/test_exp_paper_values.cpp.o"
  "CMakeFiles/test_exp_paper_values.dir/test_exp_paper_values.cpp.o.d"
  "test_exp_paper_values"
  "test_exp_paper_values.pdb"
  "test_exp_paper_values[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exp_paper_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
