# Empty compiler generated dependencies file for test_exp_paper_values.
# This may be replaced when dependencies are built.
