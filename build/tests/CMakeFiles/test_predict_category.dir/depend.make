# Empty dependencies file for test_predict_category.
# This may be replaced when dependencies are built.
