file(REMOVE_RECURSE
  "CMakeFiles/test_predict_category.dir/test_predict_category.cpp.o"
  "CMakeFiles/test_predict_category.dir/test_predict_category.cpp.o.d"
  "test_predict_category"
  "test_predict_category.pdb"
  "test_predict_category[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predict_category.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
