file(REMOVE_RECURSE
  "CMakeFiles/test_predict_downey.dir/test_predict_downey.cpp.o"
  "CMakeFiles/test_predict_downey.dir/test_predict_downey.cpp.o.d"
  "test_predict_downey"
  "test_predict_downey.pdb"
  "test_predict_downey[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predict_downey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
