# Empty compiler generated dependencies file for test_predict_downey.
# This may be replaced when dependencies are built.
