file(REMOVE_RECURSE
  "CMakeFiles/test_workload_roundtrip.dir/test_workload_roundtrip.cpp.o"
  "CMakeFiles/test_workload_roundtrip.dir/test_workload_roundtrip.cpp.o.d"
  "test_workload_roundtrip"
  "test_workload_roundtrip.pdb"
  "test_workload_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
