# Empty compiler generated dependencies file for test_workload_roundtrip.
# This may be replaced when dependencies are built.
