# Empty dependencies file for test_workload_transforms.
# This may be replaced when dependencies are built.
