file(REMOVE_RECURSE
  "CMakeFiles/test_workload_transforms.dir/test_workload_transforms.cpp.o"
  "CMakeFiles/test_workload_transforms.dir/test_workload_transforms.cpp.o.d"
  "test_workload_transforms"
  "test_workload_transforms.pdb"
  "test_workload_transforms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
