# Empty dependencies file for test_core_strings.
# This may be replaced when dependencies are built.
