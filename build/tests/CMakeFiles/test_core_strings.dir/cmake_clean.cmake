file(REMOVE_RECURSE
  "CMakeFiles/test_core_strings.dir/test_core_strings.cpp.o"
  "CMakeFiles/test_core_strings.dir/test_core_strings.cpp.o.d"
  "test_core_strings"
  "test_core_strings.pdb"
  "test_core_strings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
