file(REMOVE_RECURSE
  "CMakeFiles/test_search_greedy.dir/test_search_greedy.cpp.o"
  "CMakeFiles/test_search_greedy.dir/test_search_greedy.cpp.o.d"
  "test_search_greedy"
  "test_search_greedy.pdb"
  "test_search_greedy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
