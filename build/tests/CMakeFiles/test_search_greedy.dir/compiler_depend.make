# Empty compiler generated dependencies file for test_search_greedy.
# This may be replaced when dependencies are built.
