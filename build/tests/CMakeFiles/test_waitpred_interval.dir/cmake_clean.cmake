file(REMOVE_RECURSE
  "CMakeFiles/test_waitpred_interval.dir/test_waitpred_interval.cpp.o"
  "CMakeFiles/test_waitpred_interval.dir/test_waitpred_interval.cpp.o.d"
  "test_waitpred_interval"
  "test_waitpred_interval.pdb"
  "test_waitpred_interval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waitpred_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
