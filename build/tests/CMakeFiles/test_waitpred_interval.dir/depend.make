# Empty dependencies file for test_waitpred_interval.
# This may be replaced when dependencies are built.
