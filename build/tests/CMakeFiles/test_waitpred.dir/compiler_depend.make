# Empty compiler generated dependencies file for test_waitpred.
# This may be replaced when dependencies are built.
