file(REMOVE_RECURSE
  "CMakeFiles/test_waitpred.dir/test_waitpred.cpp.o"
  "CMakeFiles/test_waitpred.dir/test_waitpred.cpp.o.d"
  "test_waitpred"
  "test_waitpred.pdb"
  "test_waitpred[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waitpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
