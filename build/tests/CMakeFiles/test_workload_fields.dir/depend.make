# Empty dependencies file for test_workload_fields.
# This may be replaced when dependencies are built.
