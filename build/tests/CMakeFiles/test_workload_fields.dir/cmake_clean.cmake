file(REMOVE_RECURSE
  "CMakeFiles/test_workload_fields.dir/test_workload_fields.cpp.o"
  "CMakeFiles/test_workload_fields.dir/test_workload_fields.cpp.o.d"
  "test_workload_fields"
  "test_workload_fields.pdb"
  "test_workload_fields[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
