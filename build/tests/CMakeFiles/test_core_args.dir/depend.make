# Empty dependencies file for test_core_args.
# This may be replaced when dependencies are built.
