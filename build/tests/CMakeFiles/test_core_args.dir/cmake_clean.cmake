file(REMOVE_RECURSE
  "CMakeFiles/test_core_args.dir/test_core_args.cpp.o"
  "CMakeFiles/test_core_args.dir/test_core_args.cpp.o.d"
  "test_core_args"
  "test_core_args.pdb"
  "test_core_args[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_args.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
