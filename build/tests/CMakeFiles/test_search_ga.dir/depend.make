# Empty dependencies file for test_search_ga.
# This may be replaced when dependencies are built.
