file(REMOVE_RECURSE
  "CMakeFiles/test_search_ga.dir/test_search_ga.cpp.o"
  "CMakeFiles/test_search_ga.dir/test_search_ga.cpp.o.d"
  "test_search_ga"
  "test_search_ga.pdb"
  "test_search_ga[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
