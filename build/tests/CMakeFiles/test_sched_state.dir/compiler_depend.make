# Empty compiler generated dependencies file for test_sched_state.
# This may be replaced when dependencies are built.
