file(REMOVE_RECURSE
  "CMakeFiles/test_sched_state.dir/test_sched_state.cpp.o"
  "CMakeFiles/test_sched_state.dir/test_sched_state.cpp.o.d"
  "test_sched_state"
  "test_sched_state.pdb"
  "test_sched_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
