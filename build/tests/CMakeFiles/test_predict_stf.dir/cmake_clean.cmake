file(REMOVE_RECURSE
  "CMakeFiles/test_predict_stf.dir/test_predict_stf.cpp.o"
  "CMakeFiles/test_predict_stf.dir/test_predict_stf.cpp.o.d"
  "test_predict_stf"
  "test_predict_stf.pdb"
  "test_predict_stf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predict_stf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
