# Empty compiler generated dependencies file for test_predict_stf.
# This may be replaced when dependencies are built.
