# Empty compiler generated dependencies file for test_stats_quantiles.
# This may be replaced when dependencies are built.
