file(REMOVE_RECURSE
  "CMakeFiles/test_stats_quantiles.dir/test_stats_quantiles.cpp.o"
  "CMakeFiles/test_stats_quantiles.dir/test_stats_quantiles.cpp.o.d"
  "test_stats_quantiles"
  "test_stats_quantiles.pdb"
  "test_stats_quantiles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_quantiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
