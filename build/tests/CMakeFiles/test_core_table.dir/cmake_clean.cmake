file(REMOVE_RECURSE
  "CMakeFiles/test_core_table.dir/test_core_table.cpp.o"
  "CMakeFiles/test_core_table.dir/test_core_table.cpp.o.d"
  "test_core_table"
  "test_core_table.pdb"
  "test_core_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
