file(REMOVE_RECURSE
  "CMakeFiles/test_predict_simple.dir/test_predict_simple.cpp.o"
  "CMakeFiles/test_predict_simple.dir/test_predict_simple.cpp.o.d"
  "test_predict_simple"
  "test_predict_simple.pdb"
  "test_predict_simple[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predict_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
