# Empty dependencies file for test_predict_simple.
# This may be replaced when dependencies are built.
