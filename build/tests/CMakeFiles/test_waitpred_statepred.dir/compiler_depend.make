# Empty compiler generated dependencies file for test_waitpred_statepred.
# This may be replaced when dependencies are built.
