file(REMOVE_RECURSE
  "CMakeFiles/test_waitpred_statepred.dir/test_waitpred_statepred.cpp.o"
  "CMakeFiles/test_waitpred_statepred.dir/test_waitpred_statepred.cpp.o.d"
  "test_waitpred_statepred"
  "test_waitpred_statepred.pdb"
  "test_waitpred_statepred[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waitpred_statepred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
