# Empty dependencies file for test_stats_ci.
# This may be replaced when dependencies are built.
