file(REMOVE_RECURSE
  "CMakeFiles/test_stats_ci.dir/test_stats_ci.cpp.o"
  "CMakeFiles/test_stats_ci.dir/test_stats_ci.cpp.o.d"
  "test_stats_ci"
  "test_stats_ci.pdb"
  "test_stats_ci[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_ci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
