file(REMOVE_RECURSE
  "CMakeFiles/test_stats_loglinear.dir/test_stats_loglinear.cpp.o"
  "CMakeFiles/test_stats_loglinear.dir/test_stats_loglinear.cpp.o.d"
  "test_stats_loglinear"
  "test_stats_loglinear.pdb"
  "test_stats_loglinear[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_loglinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
