# Empty dependencies file for test_stats_loglinear.
# This may be replaced when dependencies are built.
