file(REMOVE_RECURSE
  "CMakeFiles/test_sched_policies.dir/test_sched_policies.cpp.o"
  "CMakeFiles/test_sched_policies.dir/test_sched_policies.cpp.o.d"
  "test_sched_policies"
  "test_sched_policies.pdb"
  "test_sched_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
