# Empty compiler generated dependencies file for test_predict_gibbons.
# This may be replaced when dependencies are built.
