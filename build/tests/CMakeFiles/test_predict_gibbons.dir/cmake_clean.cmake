file(REMOVE_RECURSE
  "CMakeFiles/test_predict_gibbons.dir/test_predict_gibbons.cpp.o"
  "CMakeFiles/test_predict_gibbons.dir/test_predict_gibbons.cpp.o.d"
  "test_predict_gibbons"
  "test_predict_gibbons.pdb"
  "test_predict_gibbons[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predict_gibbons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
