file(REMOVE_RECURSE
  "CMakeFiles/test_workload_native.dir/test_workload_native.cpp.o"
  "CMakeFiles/test_workload_native.dir/test_workload_native.cpp.o.d"
  "test_workload_native"
  "test_workload_native.pdb"
  "test_workload_native[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
