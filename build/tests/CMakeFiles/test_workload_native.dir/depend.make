# Empty dependencies file for test_workload_native.
# This may be replaced when dependencies are built.
