# Empty compiler generated dependencies file for test_sched_forward_sim.
# This may be replaced when dependencies are built.
