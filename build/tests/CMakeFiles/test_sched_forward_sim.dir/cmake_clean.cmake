file(REMOVE_RECURSE
  "CMakeFiles/test_sched_forward_sim.dir/test_sched_forward_sim.cpp.o"
  "CMakeFiles/test_sched_forward_sim.dir/test_sched_forward_sim.cpp.o.d"
  "test_sched_forward_sim"
  "test_sched_forward_sim.pdb"
  "test_sched_forward_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_forward_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
