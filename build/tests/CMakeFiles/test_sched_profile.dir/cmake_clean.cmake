file(REMOVE_RECURSE
  "CMakeFiles/test_sched_profile.dir/test_sched_profile.cpp.o"
  "CMakeFiles/test_sched_profile.dir/test_sched_profile.cpp.o.d"
  "test_sched_profile"
  "test_sched_profile.pdb"
  "test_sched_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
