# Empty dependencies file for test_sched_profile.
# This may be replaced when dependencies are built.
