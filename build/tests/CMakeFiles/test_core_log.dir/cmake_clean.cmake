file(REMOVE_RECURSE
  "CMakeFiles/test_core_log.dir/test_core_log.cpp.o"
  "CMakeFiles/test_core_log.dir/test_core_log.cpp.o.d"
  "test_core_log"
  "test_core_log.pdb"
  "test_core_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
