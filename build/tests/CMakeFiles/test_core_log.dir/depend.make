# Empty dependencies file for test_core_log.
# This may be replaced when dependencies are built.
