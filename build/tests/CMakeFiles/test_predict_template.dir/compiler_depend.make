# Empty compiler generated dependencies file for test_predict_template.
# This may be replaced when dependencies are built.
