file(REMOVE_RECURSE
  "CMakeFiles/test_predict_template.dir/test_predict_template.cpp.o"
  "CMakeFiles/test_predict_template.dir/test_predict_template.cpp.o.d"
  "test_predict_template"
  "test_predict_template.pdb"
  "test_predict_template[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predict_template.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
