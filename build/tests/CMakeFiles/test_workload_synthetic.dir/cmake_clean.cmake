file(REMOVE_RECURSE
  "CMakeFiles/test_workload_synthetic.dir/test_workload_synthetic.cpp.o"
  "CMakeFiles/test_workload_synthetic.dir/test_workload_synthetic.cpp.o.d"
  "test_workload_synthetic"
  "test_workload_synthetic.pdb"
  "test_workload_synthetic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
