# Empty compiler generated dependencies file for test_workload_synthetic.
# This may be replaced when dependencies are built.
