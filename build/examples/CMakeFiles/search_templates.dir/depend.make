# Empty dependencies file for search_templates.
# This may be replaced when dependencies are built.
