file(REMOVE_RECURSE
  "CMakeFiles/search_templates.dir/search_templates.cpp.o"
  "CMakeFiles/search_templates.dir/search_templates.cpp.o.d"
  "search_templates"
  "search_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
