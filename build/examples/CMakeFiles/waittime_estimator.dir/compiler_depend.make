# Empty compiler generated dependencies file for waittime_estimator.
# This may be replaced when dependencies are built.
