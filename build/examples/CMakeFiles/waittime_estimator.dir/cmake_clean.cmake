file(REMOVE_RECURSE
  "CMakeFiles/waittime_estimator.dir/waittime_estimator.cpp.o"
  "CMakeFiles/waittime_estimator.dir/waittime_estimator.cpp.o.d"
  "waittime_estimator"
  "waittime_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waittime_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
