file(REMOVE_RECURSE
  "CMakeFiles/metacomputing.dir/metacomputing.cpp.o"
  "CMakeFiles/metacomputing.dir/metacomputing.cpp.o.d"
  "metacomputing"
  "metacomputing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacomputing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
