# Empty dependencies file for metacomputing.
# This may be replaced when dependencies are built.
