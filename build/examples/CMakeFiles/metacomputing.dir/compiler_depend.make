# Empty compiler generated dependencies file for metacomputing.
# This may be replaced when dependencies are built.
