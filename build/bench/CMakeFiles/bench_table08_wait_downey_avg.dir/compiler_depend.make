# Empty compiler generated dependencies file for bench_table08_wait_downey_avg.
# This may be replaced when dependencies are built.
