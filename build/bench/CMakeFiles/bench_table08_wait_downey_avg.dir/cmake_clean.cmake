file(REMOVE_RECURSE
  "CMakeFiles/bench_table08_wait_downey_avg.dir/bench_table08_wait_downey_avg.cpp.o"
  "CMakeFiles/bench_table08_wait_downey_avg.dir/bench_table08_wait_downey_avg.cpp.o.d"
  "bench_table08_wait_downey_avg"
  "bench_table08_wait_downey_avg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table08_wait_downey_avg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
