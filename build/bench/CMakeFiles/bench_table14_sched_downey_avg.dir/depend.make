# Empty dependencies file for bench_table14_sched_downey_avg.
# This may be replaced when dependencies are built.
