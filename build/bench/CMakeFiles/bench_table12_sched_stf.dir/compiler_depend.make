# Empty compiler generated dependencies file for bench_table12_sched_stf.
# This may be replaced when dependencies are built.
