# Empty compiler generated dependencies file for bench_table05_wait_maxrt.
# This may be replaced when dependencies are built.
