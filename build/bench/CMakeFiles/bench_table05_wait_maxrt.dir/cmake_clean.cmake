file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_wait_maxrt.dir/bench_table05_wait_maxrt.cpp.o"
  "CMakeFiles/bench_table05_wait_maxrt.dir/bench_table05_wait_maxrt.cpp.o.d"
  "bench_table05_wait_maxrt"
  "bench_table05_wait_maxrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_wait_maxrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
