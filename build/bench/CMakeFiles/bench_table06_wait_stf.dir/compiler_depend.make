# Empty compiler generated dependencies file for bench_table06_wait_stf.
# This may be replaced when dependencies are built.
