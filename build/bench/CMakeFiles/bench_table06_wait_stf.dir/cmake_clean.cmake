file(REMOVE_RECURSE
  "CMakeFiles/bench_table06_wait_stf.dir/bench_table06_wait_stf.cpp.o"
  "CMakeFiles/bench_table06_wait_stf.dir/bench_table06_wait_stf.cpp.o.d"
  "bench_table06_wait_stf"
  "bench_table06_wait_stf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table06_wait_stf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
