# Empty compiler generated dependencies file for bench_table07_wait_gibbons.
# This may be replaced when dependencies are built.
