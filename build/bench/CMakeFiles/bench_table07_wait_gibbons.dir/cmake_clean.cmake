file(REMOVE_RECURSE
  "CMakeFiles/bench_table07_wait_gibbons.dir/bench_table07_wait_gibbons.cpp.o"
  "CMakeFiles/bench_table07_wait_gibbons.dir/bench_table07_wait_gibbons.cpp.o.d"
  "bench_table07_wait_gibbons"
  "bench_table07_wait_gibbons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_wait_gibbons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
