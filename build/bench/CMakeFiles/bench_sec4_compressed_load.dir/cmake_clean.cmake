file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_compressed_load.dir/bench_sec4_compressed_load.cpp.o"
  "CMakeFiles/bench_sec4_compressed_load.dir/bench_sec4_compressed_load.cpp.o.d"
  "bench_sec4_compressed_load"
  "bench_sec4_compressed_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_compressed_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
