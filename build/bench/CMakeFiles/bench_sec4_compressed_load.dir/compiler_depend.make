# Empty compiler generated dependencies file for bench_sec4_compressed_load.
# This may be replaced when dependencies are built.
