# Empty dependencies file for bench_report_paper_vs_measured.
# This may be replaced when dependencies are built.
