file(REMOVE_RECURSE
  "CMakeFiles/bench_report_paper_vs_measured.dir/bench_report_paper_vs_measured.cpp.o"
  "CMakeFiles/bench_report_paper_vs_measured.dir/bench_report_paper_vs_measured.cpp.o.d"
  "bench_report_paper_vs_measured"
  "bench_report_paper_vs_measured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_report_paper_vs_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
