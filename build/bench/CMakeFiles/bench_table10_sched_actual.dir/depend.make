# Empty dependencies file for bench_table10_sched_actual.
# This may be replaced when dependencies are built.
