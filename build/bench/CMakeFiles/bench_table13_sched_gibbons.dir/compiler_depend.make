# Empty compiler generated dependencies file for bench_table13_sched_gibbons.
# This may be replaced when dependencies are built.
