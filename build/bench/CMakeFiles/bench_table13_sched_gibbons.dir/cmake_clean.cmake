file(REMOVE_RECURSE
  "CMakeFiles/bench_table13_sched_gibbons.dir/bench_table13_sched_gibbons.cpp.o"
  "CMakeFiles/bench_table13_sched_gibbons.dir/bench_table13_sched_gibbons.cpp.o.d"
  "bench_table13_sched_gibbons"
  "bench_table13_sched_gibbons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_sched_gibbons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
