# Empty dependencies file for bench_table01_workloads.
# This may be replaced when dependencies are built.
