
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table01_workloads.cpp" "bench/CMakeFiles/bench_table01_workloads.dir/bench_table01_workloads.cpp.o" "gcc" "bench/CMakeFiles/bench_table01_workloads.dir/bench_table01_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/rtp_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/rtp_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/rtp_search.dir/DependInfo.cmake"
  "/root/repo/build/src/waitpred/CMakeFiles/rtp_waitpred.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/rtp_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rtp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rtp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rtp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rtp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
