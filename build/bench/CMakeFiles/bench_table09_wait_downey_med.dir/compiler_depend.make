# Empty compiler generated dependencies file for bench_table09_wait_downey_med.
# This may be replaced when dependencies are built.
