file(REMOVE_RECURSE
  "CMakeFiles/bench_table09_wait_downey_med.dir/bench_table09_wait_downey_med.cpp.o"
  "CMakeFiles/bench_table09_wait_downey_med.dir/bench_table09_wait_downey_med.cpp.o.d"
  "bench_table09_wait_downey_med"
  "bench_table09_wait_downey_med.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table09_wait_downey_med.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
