# Empty compiler generated dependencies file for bench_table15_sched_downey_med.
# This may be replaced when dependencies are built.
