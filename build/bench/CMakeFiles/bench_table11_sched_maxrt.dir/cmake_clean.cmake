file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_sched_maxrt.dir/bench_table11_sched_maxrt.cpp.o"
  "CMakeFiles/bench_table11_sched_maxrt.dir/bench_table11_sched_maxrt.cpp.o.d"
  "bench_table11_sched_maxrt"
  "bench_table11_sched_maxrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_sched_maxrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
