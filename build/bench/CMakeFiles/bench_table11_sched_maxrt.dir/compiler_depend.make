# Empty compiler generated dependencies file for bench_table11_sched_maxrt.
# This may be replaced when dependencies are built.
