# Empty compiler generated dependencies file for bench_ext_wait_interval.
# This may be replaced when dependencies are built.
