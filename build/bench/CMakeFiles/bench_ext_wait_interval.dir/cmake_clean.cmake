file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_wait_interval.dir/bench_ext_wait_interval.cpp.o"
  "CMakeFiles/bench_ext_wait_interval.dir/bench_ext_wait_interval.cpp.o.d"
  "bench_ext_wait_interval"
  "bench_ext_wait_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_wait_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
