file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bootstrap.dir/bench_ablation_bootstrap.cpp.o"
  "CMakeFiles/bench_ablation_bootstrap.dir/bench_ablation_bootstrap.cpp.o.d"
  "bench_ablation_bootstrap"
  "bench_ablation_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
