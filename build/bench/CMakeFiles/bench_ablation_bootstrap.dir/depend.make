# Empty dependencies file for bench_ablation_bootstrap.
# This may be replaced when dependencies are built.
