file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_statepred.dir/bench_ext_statepred.cpp.o"
  "CMakeFiles/bench_ext_statepred.dir/bench_ext_statepred.cpp.o.d"
  "bench_ext_statepred"
  "bench_ext_statepred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_statepred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
