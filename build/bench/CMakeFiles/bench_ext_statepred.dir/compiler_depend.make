# Empty compiler generated dependencies file for bench_ext_statepred.
# This may be replaced when dependencies are built.
