file(REMOVE_RECURSE
  "CMakeFiles/bench_table04_wait_actual.dir/bench_table04_wait_actual.cpp.o"
  "CMakeFiles/bench_table04_wait_actual.dir/bench_table04_wait_actual.cpp.o.d"
  "bench_table04_wait_actual"
  "bench_table04_wait_actual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_wait_actual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
