# Empty dependencies file for bench_table04_wait_actual.
# This may be replaced when dependencies are built.
