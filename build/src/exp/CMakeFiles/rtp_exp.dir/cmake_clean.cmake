file(REMOVE_RECURSE
  "CMakeFiles/rtp_exp.dir/experiments.cpp.o"
  "CMakeFiles/rtp_exp.dir/experiments.cpp.o.d"
  "CMakeFiles/rtp_exp.dir/paper_values.cpp.o"
  "CMakeFiles/rtp_exp.dir/paper_values.cpp.o.d"
  "librtp_exp.a"
  "librtp_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
