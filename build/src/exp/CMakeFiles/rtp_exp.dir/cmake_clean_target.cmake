file(REMOVE_RECURSE
  "librtp_exp.a"
)
