# Empty dependencies file for rtp_exp.
# This may be replaced when dependencies are built.
