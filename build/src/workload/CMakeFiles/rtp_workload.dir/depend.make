# Empty dependencies file for rtp_workload.
# This may be replaced when dependencies are built.
