file(REMOVE_RECURSE
  "CMakeFiles/rtp_workload.dir/fields.cpp.o"
  "CMakeFiles/rtp_workload.dir/fields.cpp.o.d"
  "CMakeFiles/rtp_workload.dir/job.cpp.o"
  "CMakeFiles/rtp_workload.dir/job.cpp.o.d"
  "CMakeFiles/rtp_workload.dir/native.cpp.o"
  "CMakeFiles/rtp_workload.dir/native.cpp.o.d"
  "CMakeFiles/rtp_workload.dir/swf.cpp.o"
  "CMakeFiles/rtp_workload.dir/swf.cpp.o.d"
  "CMakeFiles/rtp_workload.dir/synthetic.cpp.o"
  "CMakeFiles/rtp_workload.dir/synthetic.cpp.o.d"
  "CMakeFiles/rtp_workload.dir/transforms.cpp.o"
  "CMakeFiles/rtp_workload.dir/transforms.cpp.o.d"
  "CMakeFiles/rtp_workload.dir/workload.cpp.o"
  "CMakeFiles/rtp_workload.dir/workload.cpp.o.d"
  "librtp_workload.a"
  "librtp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
