file(REMOVE_RECURSE
  "librtp_workload.a"
)
