
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/fields.cpp" "src/workload/CMakeFiles/rtp_workload.dir/fields.cpp.o" "gcc" "src/workload/CMakeFiles/rtp_workload.dir/fields.cpp.o.d"
  "/root/repo/src/workload/job.cpp" "src/workload/CMakeFiles/rtp_workload.dir/job.cpp.o" "gcc" "src/workload/CMakeFiles/rtp_workload.dir/job.cpp.o.d"
  "/root/repo/src/workload/native.cpp" "src/workload/CMakeFiles/rtp_workload.dir/native.cpp.o" "gcc" "src/workload/CMakeFiles/rtp_workload.dir/native.cpp.o.d"
  "/root/repo/src/workload/swf.cpp" "src/workload/CMakeFiles/rtp_workload.dir/swf.cpp.o" "gcc" "src/workload/CMakeFiles/rtp_workload.dir/swf.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/workload/CMakeFiles/rtp_workload.dir/synthetic.cpp.o" "gcc" "src/workload/CMakeFiles/rtp_workload.dir/synthetic.cpp.o.d"
  "/root/repo/src/workload/transforms.cpp" "src/workload/CMakeFiles/rtp_workload.dir/transforms.cpp.o" "gcc" "src/workload/CMakeFiles/rtp_workload.dir/transforms.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/workload/CMakeFiles/rtp_workload.dir/workload.cpp.o" "gcc" "src/workload/CMakeFiles/rtp_workload.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rtp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rtp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
