file(REMOVE_RECURSE
  "librtp_sim.a"
)
