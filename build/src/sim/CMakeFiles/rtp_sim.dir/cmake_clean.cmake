file(REMOVE_RECURSE
  "CMakeFiles/rtp_sim.dir/metrics.cpp.o"
  "CMakeFiles/rtp_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/rtp_sim.dir/simulator.cpp.o"
  "CMakeFiles/rtp_sim.dir/simulator.cpp.o.d"
  "librtp_sim.a"
  "librtp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
