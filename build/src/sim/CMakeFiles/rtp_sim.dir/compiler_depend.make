# Empty compiler generated dependencies file for rtp_sim.
# This may be replaced when dependencies are built.
