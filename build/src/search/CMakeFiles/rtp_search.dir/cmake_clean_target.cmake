file(REMOVE_RECURSE
  "librtp_search.a"
)
