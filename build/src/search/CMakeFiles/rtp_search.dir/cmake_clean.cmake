file(REMOVE_RECURSE
  "CMakeFiles/rtp_search.dir/codec.cpp.o"
  "CMakeFiles/rtp_search.dir/codec.cpp.o.d"
  "CMakeFiles/rtp_search.dir/eval.cpp.o"
  "CMakeFiles/rtp_search.dir/eval.cpp.o.d"
  "CMakeFiles/rtp_search.dir/ga.cpp.o"
  "CMakeFiles/rtp_search.dir/ga.cpp.o.d"
  "CMakeFiles/rtp_search.dir/greedy.cpp.o"
  "CMakeFiles/rtp_search.dir/greedy.cpp.o.d"
  "librtp_search.a"
  "librtp_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
