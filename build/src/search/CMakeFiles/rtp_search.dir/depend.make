# Empty dependencies file for rtp_search.
# This may be replaced when dependencies are built.
