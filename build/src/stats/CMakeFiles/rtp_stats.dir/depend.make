# Empty dependencies file for rtp_stats.
# This may be replaced when dependencies are built.
