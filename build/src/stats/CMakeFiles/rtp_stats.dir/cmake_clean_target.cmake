file(REMOVE_RECURSE
  "librtp_stats.a"
)
