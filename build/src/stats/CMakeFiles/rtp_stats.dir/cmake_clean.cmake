file(REMOVE_RECURSE
  "CMakeFiles/rtp_stats.dir/ci.cpp.o"
  "CMakeFiles/rtp_stats.dir/ci.cpp.o.d"
  "CMakeFiles/rtp_stats.dir/loglinear.cpp.o"
  "CMakeFiles/rtp_stats.dir/loglinear.cpp.o.d"
  "CMakeFiles/rtp_stats.dir/quantiles.cpp.o"
  "CMakeFiles/rtp_stats.dir/quantiles.cpp.o.d"
  "CMakeFiles/rtp_stats.dir/regression.cpp.o"
  "CMakeFiles/rtp_stats.dir/regression.cpp.o.d"
  "CMakeFiles/rtp_stats.dir/summary.cpp.o"
  "CMakeFiles/rtp_stats.dir/summary.cpp.o.d"
  "librtp_stats.a"
  "librtp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
