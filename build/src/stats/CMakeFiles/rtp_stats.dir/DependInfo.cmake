
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/ci.cpp" "src/stats/CMakeFiles/rtp_stats.dir/ci.cpp.o" "gcc" "src/stats/CMakeFiles/rtp_stats.dir/ci.cpp.o.d"
  "/root/repo/src/stats/loglinear.cpp" "src/stats/CMakeFiles/rtp_stats.dir/loglinear.cpp.o" "gcc" "src/stats/CMakeFiles/rtp_stats.dir/loglinear.cpp.o.d"
  "/root/repo/src/stats/quantiles.cpp" "src/stats/CMakeFiles/rtp_stats.dir/quantiles.cpp.o" "gcc" "src/stats/CMakeFiles/rtp_stats.dir/quantiles.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/rtp_stats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/rtp_stats.dir/regression.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/rtp_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/rtp_stats.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rtp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
