# Empty dependencies file for rtp_sched.
# This may be replaced when dependencies are built.
