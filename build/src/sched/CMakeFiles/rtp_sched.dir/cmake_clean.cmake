file(REMOVE_RECURSE
  "CMakeFiles/rtp_sched.dir/backfill.cpp.o"
  "CMakeFiles/rtp_sched.dir/backfill.cpp.o.d"
  "CMakeFiles/rtp_sched.dir/fcfs.cpp.o"
  "CMakeFiles/rtp_sched.dir/fcfs.cpp.o.d"
  "CMakeFiles/rtp_sched.dir/forward_sim.cpp.o"
  "CMakeFiles/rtp_sched.dir/forward_sim.cpp.o.d"
  "CMakeFiles/rtp_sched.dir/lwf.cpp.o"
  "CMakeFiles/rtp_sched.dir/lwf.cpp.o.d"
  "CMakeFiles/rtp_sched.dir/policy.cpp.o"
  "CMakeFiles/rtp_sched.dir/policy.cpp.o.d"
  "CMakeFiles/rtp_sched.dir/profile.cpp.o"
  "CMakeFiles/rtp_sched.dir/profile.cpp.o.d"
  "CMakeFiles/rtp_sched.dir/state.cpp.o"
  "CMakeFiles/rtp_sched.dir/state.cpp.o.d"
  "librtp_sched.a"
  "librtp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
