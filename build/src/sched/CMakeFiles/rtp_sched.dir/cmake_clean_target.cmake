file(REMOVE_RECURSE
  "librtp_sched.a"
)
