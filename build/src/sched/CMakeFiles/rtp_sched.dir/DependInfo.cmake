
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/backfill.cpp" "src/sched/CMakeFiles/rtp_sched.dir/backfill.cpp.o" "gcc" "src/sched/CMakeFiles/rtp_sched.dir/backfill.cpp.o.d"
  "/root/repo/src/sched/fcfs.cpp" "src/sched/CMakeFiles/rtp_sched.dir/fcfs.cpp.o" "gcc" "src/sched/CMakeFiles/rtp_sched.dir/fcfs.cpp.o.d"
  "/root/repo/src/sched/forward_sim.cpp" "src/sched/CMakeFiles/rtp_sched.dir/forward_sim.cpp.o" "gcc" "src/sched/CMakeFiles/rtp_sched.dir/forward_sim.cpp.o.d"
  "/root/repo/src/sched/lwf.cpp" "src/sched/CMakeFiles/rtp_sched.dir/lwf.cpp.o" "gcc" "src/sched/CMakeFiles/rtp_sched.dir/lwf.cpp.o.d"
  "/root/repo/src/sched/policy.cpp" "src/sched/CMakeFiles/rtp_sched.dir/policy.cpp.o" "gcc" "src/sched/CMakeFiles/rtp_sched.dir/policy.cpp.o.d"
  "/root/repo/src/sched/profile.cpp" "src/sched/CMakeFiles/rtp_sched.dir/profile.cpp.o" "gcc" "src/sched/CMakeFiles/rtp_sched.dir/profile.cpp.o.d"
  "/root/repo/src/sched/state.cpp" "src/sched/CMakeFiles/rtp_sched.dir/state.cpp.o" "gcc" "src/sched/CMakeFiles/rtp_sched.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/rtp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rtp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rtp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
