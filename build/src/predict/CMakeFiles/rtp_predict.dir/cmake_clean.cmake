file(REMOVE_RECURSE
  "CMakeFiles/rtp_predict.dir/category.cpp.o"
  "CMakeFiles/rtp_predict.dir/category.cpp.o.d"
  "CMakeFiles/rtp_predict.dir/downey.cpp.o"
  "CMakeFiles/rtp_predict.dir/downey.cpp.o.d"
  "CMakeFiles/rtp_predict.dir/factory.cpp.o"
  "CMakeFiles/rtp_predict.dir/factory.cpp.o.d"
  "CMakeFiles/rtp_predict.dir/gibbons.cpp.o"
  "CMakeFiles/rtp_predict.dir/gibbons.cpp.o.d"
  "CMakeFiles/rtp_predict.dir/recording.cpp.o"
  "CMakeFiles/rtp_predict.dir/recording.cpp.o.d"
  "CMakeFiles/rtp_predict.dir/simple.cpp.o"
  "CMakeFiles/rtp_predict.dir/simple.cpp.o.d"
  "CMakeFiles/rtp_predict.dir/stf.cpp.o"
  "CMakeFiles/rtp_predict.dir/stf.cpp.o.d"
  "CMakeFiles/rtp_predict.dir/template_set.cpp.o"
  "CMakeFiles/rtp_predict.dir/template_set.cpp.o.d"
  "librtp_predict.a"
  "librtp_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
