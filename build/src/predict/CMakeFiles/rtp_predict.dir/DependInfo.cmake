
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/category.cpp" "src/predict/CMakeFiles/rtp_predict.dir/category.cpp.o" "gcc" "src/predict/CMakeFiles/rtp_predict.dir/category.cpp.o.d"
  "/root/repo/src/predict/downey.cpp" "src/predict/CMakeFiles/rtp_predict.dir/downey.cpp.o" "gcc" "src/predict/CMakeFiles/rtp_predict.dir/downey.cpp.o.d"
  "/root/repo/src/predict/factory.cpp" "src/predict/CMakeFiles/rtp_predict.dir/factory.cpp.o" "gcc" "src/predict/CMakeFiles/rtp_predict.dir/factory.cpp.o.d"
  "/root/repo/src/predict/gibbons.cpp" "src/predict/CMakeFiles/rtp_predict.dir/gibbons.cpp.o" "gcc" "src/predict/CMakeFiles/rtp_predict.dir/gibbons.cpp.o.d"
  "/root/repo/src/predict/recording.cpp" "src/predict/CMakeFiles/rtp_predict.dir/recording.cpp.o" "gcc" "src/predict/CMakeFiles/rtp_predict.dir/recording.cpp.o.d"
  "/root/repo/src/predict/simple.cpp" "src/predict/CMakeFiles/rtp_predict.dir/simple.cpp.o" "gcc" "src/predict/CMakeFiles/rtp_predict.dir/simple.cpp.o.d"
  "/root/repo/src/predict/stf.cpp" "src/predict/CMakeFiles/rtp_predict.dir/stf.cpp.o" "gcc" "src/predict/CMakeFiles/rtp_predict.dir/stf.cpp.o.d"
  "/root/repo/src/predict/template_set.cpp" "src/predict/CMakeFiles/rtp_predict.dir/template_set.cpp.o" "gcc" "src/predict/CMakeFiles/rtp_predict.dir/template_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/rtp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rtp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rtp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rtp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
