# Empty dependencies file for rtp_predict.
# This may be replaced when dependencies are built.
