file(REMOVE_RECURSE
  "librtp_predict.a"
)
