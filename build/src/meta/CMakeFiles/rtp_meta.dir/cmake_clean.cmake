file(REMOVE_RECURSE
  "CMakeFiles/rtp_meta.dir/coallocation.cpp.o"
  "CMakeFiles/rtp_meta.dir/coallocation.cpp.o.d"
  "CMakeFiles/rtp_meta.dir/selector.cpp.o"
  "CMakeFiles/rtp_meta.dir/selector.cpp.o.d"
  "librtp_meta.a"
  "librtp_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
