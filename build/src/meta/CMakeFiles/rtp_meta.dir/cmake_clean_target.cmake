file(REMOVE_RECURSE
  "librtp_meta.a"
)
