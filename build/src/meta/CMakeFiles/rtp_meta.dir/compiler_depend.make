# Empty compiler generated dependencies file for rtp_meta.
# This may be replaced when dependencies are built.
