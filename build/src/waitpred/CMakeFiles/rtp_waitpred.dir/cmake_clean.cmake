file(REMOVE_RECURSE
  "CMakeFiles/rtp_waitpred.dir/statepred.cpp.o"
  "CMakeFiles/rtp_waitpred.dir/statepred.cpp.o.d"
  "CMakeFiles/rtp_waitpred.dir/waitpred.cpp.o"
  "CMakeFiles/rtp_waitpred.dir/waitpred.cpp.o.d"
  "librtp_waitpred.a"
  "librtp_waitpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_waitpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
