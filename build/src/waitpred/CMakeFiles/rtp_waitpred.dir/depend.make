# Empty dependencies file for rtp_waitpred.
# This may be replaced when dependencies are built.
