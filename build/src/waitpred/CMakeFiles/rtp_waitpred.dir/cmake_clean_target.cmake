file(REMOVE_RECURSE
  "librtp_waitpred.a"
)
