file(REMOVE_RECURSE
  "CMakeFiles/rtp_core.dir/args.cpp.o"
  "CMakeFiles/rtp_core.dir/args.cpp.o.d"
  "CMakeFiles/rtp_core.dir/log.cpp.o"
  "CMakeFiles/rtp_core.dir/log.cpp.o.d"
  "CMakeFiles/rtp_core.dir/rng.cpp.o"
  "CMakeFiles/rtp_core.dir/rng.cpp.o.d"
  "CMakeFiles/rtp_core.dir/strings.cpp.o"
  "CMakeFiles/rtp_core.dir/strings.cpp.o.d"
  "CMakeFiles/rtp_core.dir/table.cpp.o"
  "CMakeFiles/rtp_core.dir/table.cpp.o.d"
  "CMakeFiles/rtp_core.dir/thread_pool.cpp.o"
  "CMakeFiles/rtp_core.dir/thread_pool.cpp.o.d"
  "CMakeFiles/rtp_core.dir/time.cpp.o"
  "CMakeFiles/rtp_core.dir/time.cpp.o.d"
  "librtp_core.a"
  "librtp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
