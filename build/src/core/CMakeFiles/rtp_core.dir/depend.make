# Empty dependencies file for rtp_core.
# This may be replaced when dependencies are built.
