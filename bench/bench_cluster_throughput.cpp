// Routed-cluster throughput: the rtprouter forwarding path against direct
// worker connections.
//
// Each paper site becomes one partition: a worker rtpd (in-process
// ServiceServer on an ephemeral TCP port) whose session replays the site's
// recorded scheduler stream, with every request line keyed `key=<site>`
// and one ESTIMATE query per submission.  Three passes over fresh fleets:
//
//   direct   — each site's stream is sent straight to its worker through
//              ServiceClient, the no-router baseline;
//   routed   — the streams are interleaved round-robin and pushed through
//              a Router, which must fan them back out by key;
//   migrated — the routed pass again, but a third of the way in the first
//              site's partition is handed to a warm standby by the live
//              MigrationCoordinator while the streams keep flowing.  The
//              exchanges that land during the migration get their own
//              quantiles (mig_* in the JSON), putting a number on the
//              pause-gate stall a cutover costs clients.
//
// Every pass records every response line; they must match byte-for-byte
// (the router forwards, it does not interpret — and a live cutover must
// be invisible), and the binary exits non-zero on any divergence.
// Reported per pass: lines/sec and the p50/p95/p99/max per-exchange
// latency.  The routed pass ends with a keyless STATS fan-out to exercise
// the merge path.
//
// Results persist as JSON (--json, default BENCH_cluster.json) so the
// routing-tier overhead trajectory accumulates across checkouts.
//
//   ./bench_cluster_throughput [--scale 0.02] [--policy backfill]
//                              [--predictor max] [--json BENCH_cluster.json]
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/args.hpp"
#include "core/error.hpp"
#include "core/strings.hpp"
#include "core/table.hpp"
#include "predict/factory.hpp"
#include "predict/simple.hpp"
#include "sched/policy.hpp"
#include "service/client.hpp"
#include "service/journal.hpp"
#include "service/migrate.hpp"
#include "service/replay.hpp"
#include "service/replication.hpp"
#include "service/router.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "stats/histogram.hpp"
#include "workload/synthetic.hpp"

namespace {

struct SiteStream {
  std::string name;
  int nodes = 0;
  std::vector<std::string> lines;  ///< keyed protocol lines, queries inline
};

/// One worker fleet: a session + TCP server per site, serving until torn
/// down.  Fresh per pass so both passes start from identical state.
struct Fleet {
  std::vector<std::unique_ptr<rtp::RuntimeEstimator>> predictors;
  std::vector<std::unique_ptr<rtp::OnlineSession>> sessions;
  std::vector<std::unique_ptr<rtp::ServiceServer>> servers;
  std::vector<std::thread> threads;
  std::vector<std::string> addresses;

  ~Fleet() {
    for (auto& server : servers) server->shutdown();
    for (auto& thread : threads) thread.join();
  }
};

}  // namespace

int main(int argc, char** argv) {
  try {
    rtp::ArgParser args(argc, argv);
    args.add_option("scale", "fraction of each trace's job count", "0.02");
    args.add_option("policy", "fcfs|lwf|backfill|easy", "backfill");
    args.add_option("predictor", "actual|max|stf|gibbons|downey-avg|downey-med", "max");
    args.add_flag("csv", "emit CSV");
    args.add_option("json", "persist results to this JSON file ('' = skip)",
                    "BENCH_cluster.json");
    if (!args.parse()) return 0;

    const auto policy = rtp::make_policy(rtp::policy_kind_from_string(args.str("policy")));
    const auto predictor_kind = rtp::predictor_kind_from_string(args.str("predictor"));

    // Record each site once; queries ride inline after every submission.
    std::vector<SiteStream> sites;
    std::vector<rtp::Workload> workloads = rtp::paper_workloads(args.real("scale"));
    for (const rtp::Workload& w : workloads) {
      rtp::MaxRuntimePredictor live(w);
      const rtp::RecordedRun recorded = rtp::record_session_log(w, *policy, live);
      SiteStream site;
      site.name = w.name();
      site.nodes = w.machine_nodes();
      for (const rtp::Request& event : recorded.events) {
        rtp::Request keyed = event;
        keyed.key = site.name;
        site.lines.push_back(rtp::format_request(keyed));
        if (event.kind == rtp::RequestKind::Submit) {
          rtp::Request query;
          query.kind = rtp::RequestKind::Estimate;
          query.id = event.id;
          query.key = site.name;
          site.lines.push_back(rtp::format_request(query));
        }
      }
      sites.push_back(std::move(site));
    }

    const auto make_fleet = [&](Fleet* fleet) {
      for (const SiteStream& site : sites) {
        const std::size_t i = fleet->sessions.size();
        fleet->predictors.push_back(
            rtp::make_runtime_estimator(predictor_kind, workloads[i]));
        rtp::SessionOptions session_options;
        session_options.name = site.name;
        fleet->sessions.push_back(std::make_unique<rtp::OnlineSession>(
            site.nodes, *policy, *fleet->predictors.back(), session_options));
        rtp::ServerOptions server_options;
        server_options.greeting = false;
        server_options.threads = 1;
        fleet->servers.push_back(std::make_unique<rtp::ServiceServer>(
            *fleet->sessions.back(), server_options));
        const std::uint16_t port = fleet->servers.back()->listen_on(0);
        fleet->addresses.push_back("127.0.0.1:" + std::to_string(port));
        rtp::ServiceServer* server = fleet->servers.back().get();
        fleet->threads.emplace_back([server] { server->serve(); });
      }
    };

    rtp::TablePrinter table({"Mode", "Lines", "Lines/s", "p50 (us)", "p95 (us)",
                             "p99 (us)", "max (us)"});
    std::ostringstream json_runs;
    bool ok = true;

    // --- Direct pass: each site straight to its worker. -------------------
    std::vector<std::vector<std::string>> direct_answers(sites.size());
    double direct_qps = 0.0;
    {
      Fleet fleet;
      make_fleet(&fleet);
      rtp::LatencyHistogram latency;
      std::size_t lines = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < sites.size(); ++i) {
        rtp::ServiceClient client({fleet.addresses[i]});
        for (const std::string& line : sites[i].lines) {
          const auto q0 = std::chrono::steady_clock::now();
          const rtp::ClientReply reply = client.request(line);
          latency.add(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - q0)
                          .count());
          ++lines;
          RTP_CHECK(reply.ok, sites[i].name + " direct: " + reply.line);
          direct_answers[i].push_back(reply.line);
        }
      }
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      direct_qps = seconds > 0.0 ? static_cast<double>(lines) / seconds : 0.0;
      table.add_row({"direct", std::to_string(lines), rtp::format_double(direct_qps, 0),
                     rtp::format_double(latency.p50(), 1),
                     rtp::format_double(latency.p95(), 1),
                     rtp::format_double(latency.p99(), 1),
                     rtp::format_double(latency.max(), 1)});
      json_runs << "\n    {\"mode\": \"direct\", \"lines\": " << lines
                << ", \"qps\": " << rtp::format_double(direct_qps, 1)
                << ", \"p50_us\": " << rtp::format_double(latency.p50(), 3)
                << ", \"p95_us\": " << rtp::format_double(latency.p95(), 3)
                << ", \"p99_us\": " << rtp::format_double(latency.p99(), 3)
                << ", \"max_us\": " << rtp::format_double(latency.max(), 3) << "}";
    }

    // --- Routed pass: interleaved streams through the router. -------------
    {
      Fleet fleet;
      make_fleet(&fleet);
      rtp::PartitionMap map;
      for (std::size_t i = 0; i < sites.size(); ++i) {
        map.partitions.push_back({fleet.addresses[i]});
        map.assignments.emplace(sites[i].name, i);
      }
      rtp::RouterOptions router_options;
      router_options.greeting = false;
      rtp::Router router(std::move(map), router_options);

      rtp::LatencyHistogram latency;
      std::size_t lines = 0;
      std::vector<std::size_t> cursor(sites.size(), 0);
      std::vector<std::vector<std::string>> routed_answers(sites.size());
      bool quit = false;
      const auto t0 = std::chrono::steady_clock::now();
      for (bool drained = false; !drained;) {
        drained = true;
        for (std::size_t i = 0; i < sites.size(); ++i) {
          if (cursor[i] >= sites[i].lines.size()) continue;
          drained = false;
          const std::string& line = sites[i].lines[cursor[i]++];
          const auto q0 = std::chrono::steady_clock::now();
          const std::string reply = router.handle_line(line, ++lines, &quit);
          latency.add(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - q0)
                          .count());
          RTP_CHECK(rtp::starts_with(reply, "OK"),
                    sites[i].name + " routed: " + reply);
          routed_answers[i].push_back(reply);
        }
      }
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      const double routed_qps =
          seconds > 0.0 ? static_cast<double>(lines) / seconds : 0.0;

      for (std::size_t i = 0; i < sites.size(); ++i) {
        if (routed_answers[i] != direct_answers[i]) {
          std::cerr << sites[i].name
                    << ": routed answers diverge from the direct baseline\n";
          ok = false;
        }
      }
      // Exercise the STATS fan-out merge once per bench run.
      bool stats_quit = false;
      const std::string stats = router.handle_line("STATS", lines + 1, &stats_quit);
      RTP_CHECK(rtp::starts_with(stats, "OK "), "cluster STATS: " + stats);

      table.add_row({"routed", std::to_string(lines), rtp::format_double(routed_qps, 0),
                     rtp::format_double(latency.p50(), 1),
                     rtp::format_double(latency.p95(), 1),
                     rtp::format_double(latency.p99(), 1),
                     rtp::format_double(latency.max(), 1)});
      json_runs << ",\n    {\"mode\": \"routed\", \"lines\": " << lines
                << ", \"qps\": " << rtp::format_double(routed_qps, 1)
                << ", \"p50_us\": " << rtp::format_double(latency.p50(), 3)
                << ", \"p95_us\": " << rtp::format_double(latency.p95(), 3)
                << ", \"p99_us\": " << rtp::format_double(latency.p99(), 3)
                << ", \"max_us\": " << rtp::format_double(latency.max(), 3)
                << ", \"forwarded\": " << router.stats().forwarded
                << ", \"failovers\": " << router.stats().failovers << "}";
    }

    // --- Migrated pass: routed streams while partition 0 moves live. ------
    {
      Fleet fleet;
      make_fleet(&fleet);

      // Site 0 is served by a journaled primary (replication sender, retire
      // sidecar) instead of its plain fleet worker, so the coordinator can
      // hand it to a warm standby mid-stream.
      const std::string base =
          "/tmp/bench_cluster_mig_" + std::to_string(::getpid());
      const std::string src_journal = base + "_src.rtpj";
      const std::string dst_journal = base + "_dst.rtpj";
      for (const std::string& stale :
           {src_journal, src_journal + ".base", src_journal + ".retired",
            dst_journal, dst_journal + ".base"})
        ::unlink(stale.c_str());

      const auto src_predictor =
          rtp::make_runtime_estimator(predictor_kind, workloads[0]);
      rtp::SessionOptions site0_options;
      site0_options.name = sites[0].name;
      rtp::OnlineSession src_session(sites[0].nodes, *policy, *src_predictor,
                                     site0_options);
      rtp::JournalWriter src_writer(src_journal);
      rtp::ReplicationOptions repl_options;
      repl_options.heartbeat_ms = 20;
      rtp::ReplicationSender sender(src_journal,
                                    rtp::session_fingerprint(src_session),
                                    repl_options);
      rtp::ServerOptions src_options;
      src_options.greeting = false;
      // Not 1 like the plain fleet: during the cutover the source serves the
      // router's pooled streaming connection AND the coordinator's control
      // requests (status polls, MAPSET, retire) concurrently.
      src_options.threads = 4;
      src_options.journal = &src_writer;
      src_options.snapshot_every = 0;
      src_options.replication = &sender;
      src_options.retire_sidecar = src_journal + ".retired";
      rtp::ServiceServer src_server(src_session, src_options);
      sender.set_snapshot_source([&] { return src_server.replication_snapshot(); });
      sender.start();
      const std::uint16_t src_port = src_server.listen_on(0);
      std::thread src_thread([&] { src_server.serve(); });

      const auto dst_predictor =
          rtp::make_runtime_estimator(predictor_kind, workloads[0]);
      rtp::OnlineSession dst_session(sites[0].nodes, *policy, *dst_predictor,
                                     site0_options);
      rtp::JournalWriter dst_writer(dst_journal);
      rtp::ServerOptions dst_options;
      dst_options.greeting = false;
      dst_options.threads = 4;
      dst_options.journal = &dst_writer;
      dst_options.snapshot_every = 0;
      rtp::ServiceServer dst_server(dst_session, dst_options);
      rtp::FollowerApplier applier(dst_server, dst_session, dst_writer,
                                   rtp::session_fingerprint(dst_session),
                                   rtp::FollowerOptions{});
      dst_server.attach_follower(&applier);
      applier.listen_on(0);
      applier.start();
      const std::uint16_t dst_port = dst_server.listen_on(0);
      const std::string dst_address = "127.0.0.1:" + std::to_string(dst_port);
      std::thread dst_thread([&] { dst_server.serve(); });

      rtp::PartitionMap map;
      map.partitions.push_back({"127.0.0.1:" + std::to_string(src_port)});
      map.assignments.emplace(sites[0].name, 0);
      for (std::size_t i = 1; i < sites.size(); ++i) {
        map.partitions.push_back({fleet.addresses[i]});
        map.assignments.emplace(sites[i].name, i);
      }
      rtp::RouterOptions router_options;
      router_options.greeting = false;
      std::optional<rtp::Router> router(std::in_place, std::move(map),
                                        router_options);
      rtp::MigrationOptions mig_options;
      mig_options.poll_ms = 2;
      rtp::MigrationCoordinator coordinator(*router, mig_options);
      router->attach_coordinator(&coordinator);

      std::size_t total_lines = 0;
      for (const SiteStream& site : sites) total_lines += site.lines.size();

      rtp::LatencyHistogram latency;
      rtp::LatencyHistogram mig_latency;
      std::size_t lines = 0;
      std::vector<std::size_t> cursor(sites.size(), 0);
      std::vector<std::vector<std::string>> migrated_answers(sites.size());
      std::thread migrator;
      std::atomic<bool> migrating{false};
      rtp::MigrationReport report;
      bool quit = false;
      const auto t0 = std::chrono::steady_clock::now();
      for (bool drained = false; !drained;) {
        drained = true;
        for (std::size_t i = 0; i < sites.size(); ++i) {
          if (cursor[i] >= sites[i].lines.size()) continue;
          drained = false;
          const std::string& line = sites[i].lines[cursor[i]++];
          const auto q0 = std::chrono::steady_clock::now();
          const std::string reply = router->handle_line(line, ++lines, &quit);
          const double us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - q0)
                                .count();
          latency.add(us);
          if (migrating.load()) mig_latency.add(us);
          RTP_CHECK(rtp::starts_with(reply, "OK"),
                    sites[i].name + " migrated: " + reply);
          migrated_answers[i].push_back(reply);
          if (!migrator.joinable() && lines * 3 >= total_lines) {
            migrating.store(true);
            migrator = std::thread([&] {
              report = coordinator.migrate_partition(0, dst_address);
              migrating.store(false);
            });
          }
        }
      }
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      const double migrated_qps =
          seconds > 0.0 ? static_cast<double>(lines) / seconds : 0.0;
      if (migrator.joinable()) migrator.join();
      if (!report.ok) {
        std::cerr << "live migration failed: " << report.error << "\n";
        ok = false;
      }

      // The cutover must be invisible: byte-identical to the no-router,
      // no-migration baseline.
      for (std::size_t i = 0; i < sites.size(); ++i) {
        if (migrated_answers[i] != direct_answers[i]) {
          std::cerr << sites[i].name
                    << ": migrated answers diverge from the direct baseline\n";
          ok = false;
        }
      }

      table.add_row({"migrated", std::to_string(lines),
                     rtp::format_double(migrated_qps, 0),
                     rtp::format_double(latency.p50(), 1),
                     rtp::format_double(latency.p95(), 1),
                     rtp::format_double(latency.p99(), 1),
                     rtp::format_double(latency.max(), 1)});
      json_runs << ",\n    {\"mode\": \"migrated\", \"lines\": " << lines
                << ", \"qps\": " << rtp::format_double(migrated_qps, 1)
                << ", \"p50_us\": " << rtp::format_double(latency.p50(), 3)
                << ", \"p95_us\": " << rtp::format_double(latency.p95(), 3)
                << ", \"p99_us\": " << rtp::format_double(latency.p99(), 3)
                << ", \"max_us\": " << rtp::format_double(latency.max(), 3)
                << ", \"mig_lines\": " << mig_latency.count()
                << ", \"mig_p50_us\": " << rtp::format_double(mig_latency.p50(), 3)
                << ", \"mig_p99_us\": " << rtp::format_double(mig_latency.p99(), 3)
                << ", \"mig_max_us\": " << rtp::format_double(mig_latency.max(), 3)
                << ", \"paused_waits\": " << router->stats().paused_waits
                << ", \"map_version\": " << router->map_version() << "}";

      // Close the router's pooled connections before the workers' serve()
      // loops drain, then tear the migration cluster down.
      router.reset();
      sender.stop();
      src_server.shutdown();
      src_thread.join();
      applier.stop();
      dst_server.shutdown();
      dst_thread.join();
      for (const std::string& stale :
           {src_journal, src_journal + ".base", src_journal + ".retired",
            dst_journal, dst_journal + ".base"})
        ::unlink(stale.c_str());
    }

    if (args.flag("csv")) {
      table.print_csv(std::cout);
    } else {
      std::cout << "Routed-cluster throughput (" << sites.size()
                << " partitions, one per site)\n";
      table.print(std::cout);
    }
    std::cout << (ok ? "equivalence check: routed answers identical to direct\n"
                     : "equivalence check: FAILED\n");

    const std::string json_path = args.str("json");
    if (!json_path.empty()) {
      std::ofstream json(json_path, std::ios::trunc);
      json << "{\n  \"bench\": \"cluster_throughput\",\n  \"policy\": \""
           << args.str("policy") << "\",\n  \"predictor\": \"" << args.str("predictor")
           << "\",\n  \"scale\": " << rtp::format_double(args.real("scale"), 4)
           << ",\n  \"partitions\": " << sites.size() << ",\n  \"runs\": ["
           << json_runs.str() << "\n  ]\n}\n";
      RTP_CHECK(json.good(), "cannot write " + json_path);
      std::cerr << "bench_cluster_throughput: results persisted to " << json_path
                << "\n";
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_cluster_throughput: " << e.what() << "\n";
    return 1;
  }
}
