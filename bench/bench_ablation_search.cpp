// Ablation: how the template set is found — hand-built default vs greedy
// search vs the paper's genetic algorithm — measured as run-time prediction
// error on each workload's prediction workload (paper §2.1 compares GA and
// greedy and picks the GA).
#include "bench_common.hpp"

#include "predict/stf.hpp"
#include "search/ga.hpp"
#include "search/greedy.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv, /*default_scale=*/0.1);
  if (!options) return 0;

  rtp::TablePrinter table({"Workload", "Method", "RT error (min)", "Templates",
                           "Evaluations"});
  for (const rtp::Workload& w : rtp::paper_workloads(options->scale)) {
    const bool has_max = rtp::compute_stats(w).max_runtime_coverage > 0.0;
    const rtp::PredictionWorkload eval =
        rtp::PredictionWorkload::from_policy(w, rtp::PolicyKind::BackfillConservative);

    rtp::StfPredictor def(rtp::default_template_set(w.fields(), has_max));
    const double def_err = eval.evaluate(def);
    table.add_row({w.name(), "default",
                   rtp::format_double(rtp::to_minutes(def_err), 2),
                   std::to_string(def.templates().templates.size()), "0"});

    rtp::GreedyOptions greedy;
    greedy.candidate_limit = 96;
    const rtp::SearchResult g = rtp::search_templates_greedy(eval, w.fields(), has_max, greedy);
    table.add_row({w.name(), "greedy",
                   rtp::format_double(rtp::to_minutes(g.best_error), 2),
                   std::to_string(g.best.templates.size()), std::to_string(g.evaluations)});

    rtp::GaOptions ga = options->stf.ga.value_or(rtp::GaOptions{});
    if (!options->stf.ga) {
      ga.population = 20;
      ga.generations = 10;
    }
    const rtp::SearchResult a = rtp::search_templates_ga(eval, w.fields(), has_max, ga);
    table.add_row({w.name(), "GA",
                   rtp::format_double(rtp::to_minutes(a.best_error), 2),
                   std::to_string(a.best.templates.size()), std::to_string(a.evaluations)});
  }
  if (options->csv)
    table.print_csv(std::cout);
  else {
    std::cout << "Ablation: template search method (run-time prediction error)\n";
    table.print(std::cout);
  }
  return 0;
}
