// Table 10: scheduling performance using actual run times (the upper
// bound: the scheduler exactly knows every run time).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv);
  if (!options) return 0;
  const auto workloads = rtp::paper_workloads(options->scale);
  const auto rows = rtp::scheduling_table(workloads, rtp::scheduling_policies(),
                                          rtp::PredictorKind::Actual, options->stf, options->threads);
  rtp::bench::print_sched_rows("Table 10: scheduling performance, actual run times", rows,
                               options->csv);
  return 0;
}
