// Ablation: the max-history knob (paper §2.1: "A small maximum history
// means ... only more recent events are used") and the node-range size —
// the two numeric template parameters the GA searches over, swept here
// explicitly on a (u,e,n) template over the ANL workload.
#include "bench_common.hpp"

#include "predict/stf.hpp"
#include "search/eval.hpp"

namespace {

rtp::Template base_template() {
  rtp::Template t;
  t.characteristics.set(rtp::Characteristic::User).set(rtp::Characteristic::Executable);
  t.use_nodes = true;
  t.node_range_size = 4;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv, /*default_scale=*/0.25);
  if (!options) return 0;

  const rtp::Workload w = rtp::generate_synthetic(rtp::anl_config(options->scale));
  const rtp::PredictionWorkload eval =
      rtp::PredictionWorkload::from_policy(w, rtp::PolicyKind::BackfillConservative);

  {
    rtp::TablePrinter table({"Max history", "RT error (min)"});
    for (std::size_t hist : {std::size_t{2}, std::size_t{8}, std::size_t{32},
                             std::size_t{128}, std::size_t{512}, std::size_t{0}}) {
      rtp::TemplateSet set;
      rtp::Template t = base_template();
      t.max_history = hist;
      set.templates.push_back(t);
      set.templates.emplace_back();  // global fallback
      rtp::StfPredictor predictor(set);
      table.add_row({hist == 0 ? "unlimited" : std::to_string(hist),
                     rtp::format_double(rtp::to_minutes(eval.evaluate(predictor)), 2)});
    }
    if (options->csv)
      table.print_csv(std::cout);
    else {
      std::cout << "Ablation: max history on (u,e,n=4) over ANL\n";
      table.print(std::cout);
    }
  }

  std::cout << "\n";

  {
    rtp::TablePrinter table({"Node range size", "RT error (min)"});
    for (int range : {1, 2, 4, 8, 16, 64, 512}) {
      rtp::TemplateSet set;
      rtp::Template t = base_template();
      t.node_range_size = range;
      set.templates.push_back(t);
      set.templates.emplace_back();
      rtp::StfPredictor predictor(set);
      table.add_row({std::to_string(range),
                     rtp::format_double(rtp::to_minutes(eval.evaluate(predictor)), 2)});
    }
    if (options->csv)
      table.print_csv(std::cout);
    else {
      std::cout << "Ablation: node range size on (u,e,n=R) over ANL\n";
      table.print(std::cout);
    }
  }
  return 0;
}
