// Table 4: wait-time prediction performance using actual run times.
// FCFS is omitted exactly as in the paper: with oracle run times and no
// later-arriving overtakers its wait-time prediction error is zero.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv);
  if (!options) return 0;
  const auto workloads = rtp::paper_workloads(options->scale);
  const auto rows = rtp::wait_prediction_table(
      workloads, rtp::wait_prediction_policies(/*include_fcfs=*/false),
      rtp::PredictorKind::Actual, options->stf, options->threads);
  rtp::bench::print_wait_rows("Table 4: wait-time prediction, actual run times", rows,
                              options->csv);
  return 0;
}
