// Shared command-line handling and table rendering for the per-table bench
// binaries.  Every binary accepts:
//   --scale S   fraction of each trace's job count to generate (default 1.0)
//   --threads N experiment cells run on N workers via ExperimentRunner
//               (default 0 = hardware concurrency; 1 = serial).  Emitted
//               tables are byte-identical at any thread count.
//   --ga        run the paper's GA template search per (workload, policy)
//               instead of the hand-built default template set (STF only)
//   --ga-pop / --ga-gens   GA budget when --ga is given
//   --csv       emit CSV instead of an aligned table
//   --verbose   progress logging to stderr
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/args.hpp"
#include "core/error.hpp"
#include "core/log.hpp"
#include "core/strings.hpp"
#include "core/table.hpp"
#include "exp/experiments.hpp"
#include "exp/runner.hpp"
#include "workload/synthetic.hpp"

namespace rtp::bench {

struct BenchOptions {
  double scale = 1.0;
  bool csv = false;
  std::size_t threads = 0;  // ExperimentRunner workers; 0 = hardware
  StfSource stf;
};

/// Parse common options; returns std::nullopt when --help was printed.
inline std::optional<BenchOptions> parse(int argc, char** argv, double default_scale = 1.0) {
  ArgParser args(argc, argv);
  args.add_option("scale", "fraction of each trace's job count", std::to_string(default_scale));
  args.add_option("threads", "experiment-cell workers (0 = hardware, 1 = serial)", "0");
  args.add_flag("ga", "run the GA template search per workload/policy (STF only)");
  args.add_option("ga-pop", "GA population size", "24");
  args.add_option("ga-gens", "GA generations", "12");
  args.add_flag("csv", "emit CSV");
  args.add_flag("verbose", "progress logging to stderr");
  if (!args.parse()) return std::nullopt;

  BenchOptions out;
  out.scale = args.real("scale");
  out.csv = args.flag("csv");
  const long long threads = args.integer("threads");
  RTP_CHECK(threads >= 0, "--threads must be >= 0");
  out.threads = static_cast<std::size_t>(threads);
  if (args.flag("verbose")) set_log_level(LogLevel::Info);
  if (args.flag("ga")) {
    GaOptions ga;
    ga.population = static_cast<std::size_t>(args.integer("ga-pop"));
    ga.generations = static_cast<std::size_t>(args.integer("ga-gens"));
    out.stf.ga = ga;
  }
  return out;
}

inline void print_wait_rows(const std::string& title, const std::vector<WaitPredRow>& rows,
                            bool csv) {
  TablePrinter table({"Workload", "Scheduling Algorithm", "Mean Error (minutes)",
                      "Percentage of Mean Wait Time"});
  for (const WaitPredRow& r : rows)
    table.add_row({r.workload, r.algorithm, format_double(r.mean_error_minutes, 2),
                   format_double(r.percent_of_mean_wait, 0)});
  if (csv) {
    table.print_csv(std::cout);
  } else {
    std::cout << title << "\n";
    table.print(std::cout);
  }
}

inline void print_sched_rows(const std::string& title, const std::vector<SchedPerfRow>& rows,
                             bool csv) {
  TablePrinter table({"Workload", "Scheduling Algorithm", "Utilization (percent)",
                      "Mean Wait Time (minutes)", "RT Error (min)", "RT Error (% mean RT)"});
  for (const SchedPerfRow& r : rows)
    table.add_row({r.workload, r.algorithm, format_double(r.utilization_percent, 2),
                   format_double(r.mean_wait_minutes, 2),
                   format_double(r.runtime_error_minutes, 2),
                   format_double(r.runtime_error_percent, 0)});
  if (csv) {
    table.print_csv(std::cout);
  } else {
    std::cout << title << "\n";
    table.print(std::cout);
  }
}

}  // namespace rtp::bench
