// Ablation: training-set initialization (paper §2.1: the online algorithm
// "suffers from an initial ramp-up ... This deficiency could be corrected
// by using a training set to initialize C").  The first fraction of each
// trace is used as the training set; error is measured on the remainder,
// cold versus bootstrapped.
#include "bench_common.hpp"

#include "predict/stf.hpp"
#include "search/eval.hpp"
#include "workload/transforms.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv, /*default_scale=*/0.25);
  if (!options) return 0;

  rtp::TablePrinter table({"Workload", "Cold error (min)", "Bootstrapped error (min)",
                           "Improvement (%)"});
  for (const rtp::Workload& w : rtp::paper_workloads(options->scale)) {
    const bool has_max = rtp::compute_stats(w).max_runtime_coverage > 0.0;
    const std::size_t train_count = w.size() / 5;  // first 20% is training

    // Evaluation workload: predictions only for the held-out jobs.
    const rtp::Workload holdout = rtp::rebase_time(
        rtp::filter(w, [&](const rtp::Job& j) { return j.id >= train_count; }));
    const rtp::PredictionWorkload eval =
        rtp::PredictionWorkload::from_policy(holdout, rtp::PolicyKind::BackfillConservative);

    rtp::StfPredictor cold(rtp::default_template_set(w.fields(), has_max));
    const double cold_err = eval.evaluate(cold);

    rtp::StfPredictor warm(rtp::default_template_set(w.fields(), has_max));
    warm.bootstrap(std::span(w.jobs()).first(train_count));
    const double warm_err = eval.evaluate(warm);

    table.add_row({w.name(), rtp::format_double(rtp::to_minutes(cold_err), 2),
                   rtp::format_double(rtp::to_minutes(warm_err), 2),
                   rtp::format_double(100.0 * (cold_err - warm_err) / cold_err, 1)});
  }
  if (options->csv)
    table.print_csv(std::cout);
  else {
    std::cout << "Ablation: training-set initialization of the category database\n";
    table.print(std::cout);
  }
  return 0;
}
