// Table 14: scheduling performance using Downey's conditional-average
// run-time predictor.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv);
  if (!options) return 0;
  const auto workloads = rtp::paper_workloads(options->scale);
  const auto rows = rtp::scheduling_table(workloads, rtp::scheduling_policies(),
                                          rtp::PredictorKind::DowneyAverage, options->stf, options->threads);
  rtp::bench::print_sched_rows(
      "Table 14: scheduling performance, Downey conditional average", rows, options->csv);
  return 0;
}
