// Paper-vs-measured report: runs every wait-prediction and scheduling
// experiment (Tables 4-15) and prints the paper's published value next to
// the measured one, plus computed qualitative agreement checks.  With
// --markdown it emits the tables in Markdown (EXPERIMENTS.md is generated
// from this output).
#include "bench_common.hpp"

#include <algorithm>

#include "exp/paper_values.hpp"

namespace {

using rtp::PolicyKind;
using rtp::PredictorKind;

constexpr PredictorKind kPredictors[] = {
    PredictorKind::Actual,        PredictorKind::MaxRuntime,   PredictorKind::Stf,
    PredictorKind::Gibbons,       PredictorKind::DowneyAverage,
    PredictorKind::DowneyMedian,
};

std::string fmt(double v, int decimals = 2) { return rtp::format_double(v, decimals); }

void emit(rtp::TablePrinter& table, bool markdown, const std::string& title) {
  if (markdown) {
    std::cout << "\n### " << title << "\n\n";
    // Markdown table from the printer's CSV form.
    std::ostringstream csv;
    table.print_csv(csv);
    std::istringstream lines(csv.str());
    std::string line;
    bool first = true;
    while (std::getline(lines, line)) {
      std::cout << "| ";
      for (auto field : rtp::split(line, ',')) std::cout << field << " | ";
      std::cout << "\n";
      if (first) {
        std::cout << "|";
        for (std::size_t i = 0; i < rtp::split(line, ',').size(); ++i) std::cout << "---|";
        std::cout << "\n";
        first = false;
      }
    }
  } else {
    std::cout << "\n" << title << "\n";
    table.print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  rtp::ArgParser args(argc, argv);
  args.add_option("scale", "fraction of each trace's job count", "1.0");
  args.add_option("threads", "experiment-cell workers (0 = hardware, 1 = serial)", "0");
  args.add_flag("markdown", "emit Markdown tables");
  args.add_flag("ga", "GA template search for the STF predictor");
  if (!args.parse()) return 0;
  const bool markdown = args.flag("markdown");
  const auto threads = static_cast<std::size_t>(std::max(0LL, args.integer("threads")));

  rtp::StfSource stf;
  if (args.flag("ga")) {
    rtp::GaOptions ga;
    ga.population = 24;
    ga.generations = 12;
    stf.ga = ga;
  }
  const auto workloads = rtp::paper_workloads(args.real("scale"));

  // Qualitative agreement counters.
  std::size_t wait_cells = 0, wait_direction_agree = 0;
  std::size_t sched_cells = 0;
  std::size_t lwf_vs_bf_agree = 0, lwf_vs_bf_total = 0;

  // Per-(workload, policy) measured wait-pred error per predictor, for the
  // predictor-ordering check at the end.
  std::map<std::string, std::vector<std::pair<double, double>>> ordering;  // ours, paper

  for (PredictorKind predictor : kPredictors) {
    const bool include_fcfs = predictor != PredictorKind::Actual;
    const auto rows = rtp::wait_prediction_table(
        workloads, rtp::wait_prediction_policies(include_fcfs), predictor, stf, threads);
    rtp::TablePrinter table({"Workload", "Algorithm", "Paper err (min)", "Ours err (min)",
                             "Paper % of wait", "Ours % of wait"});
    for (const auto& r : rows) {
      const auto paper = rtp::paper_wait_cell(predictor, r.workload,
                                              rtp::policy_kind_from_string(r.algorithm));
      table.add_row({r.workload, r.algorithm,
                     paper ? fmt(paper->mean_error_minutes) : "-",
                     fmt(r.mean_error_minutes),
                     paper ? fmt(paper->percent_of_mean_wait, 0) : "-",
                     fmt(r.percent_of_mean_wait, 0)});
      if (paper) {
        ++wait_cells;
        // Direction check: is the error below / above the mean wait on the
        // same side as the paper?
        const bool paper_worse_than_wait = paper->percent_of_mean_wait > 100.0;
        const bool ours_worse_than_wait = r.percent_of_mean_wait > 100.0;
        if (paper_worse_than_wait == ours_worse_than_wait) ++wait_direction_agree;
        ordering["wait/" + r.workload + "/" + r.algorithm].emplace_back(
            r.mean_error_minutes, paper->mean_error_minutes);
      }
    }
    emit(table, markdown,
         "Table " + std::to_string(rtp::paper_wait_table_number(predictor)) +
             ": wait-time prediction error, predictor = " + rtp::to_string(predictor));
  }

  for (PredictorKind predictor : kPredictors) {
    const auto rows =
        rtp::scheduling_table(workloads, rtp::scheduling_policies(), predictor, stf, threads);
    rtp::TablePrinter table({"Workload", "Algorithm", "Paper util %", "Ours util %",
                             "Paper wait (min)", "Ours wait (min)"});
    std::map<std::string, std::pair<double, double>> waits;  // per workload: lwf, bf
    for (const auto& r : rows) {
      const auto paper = rtp::paper_sched_cell(predictor, r.workload,
                                               rtp::policy_kind_from_string(r.algorithm));
      table.add_row({r.workload, r.algorithm,
                     paper ? fmt(paper->utilization_percent) : "-",
                     fmt(r.utilization_percent),
                     paper ? fmt(paper->mean_wait_minutes) : "-",
                     fmt(r.mean_wait_minutes)});
      if (paper) ++sched_cells;
      if (r.algorithm == "LWF")
        waits[r.workload].first = r.mean_wait_minutes;
      else
        waits[r.workload].second = r.mean_wait_minutes;
    }
    // Paper shape: backfill's mean wait exceeds LWF's in every published
    // scheduling table row pair.
    for (const auto& [workload, pair] : waits) {
      ++lwf_vs_bf_total;
      if (pair.second >= pair.first) ++lwf_vs_bf_agree;
    }
    emit(table, markdown,
         "Table " + std::to_string(rtp::paper_sched_table_number(predictor)) +
             ": scheduling performance, predictor = " + rtp::to_string(predictor));
  }

  // Predictor-ordering agreement: for each (workload, policy), compare the
  // rank of the STF predictor among all predictors, ours vs paper.
  std::size_t stf_best_paper = 0, stf_best_ours = 0, cells = 0;
  for (const auto& [key, values] : ordering) {
    if (values.size() != std::size(kPredictors)) continue;  // FCFS lacks Table 4
    ++cells;
    // Index order follows kPredictors; STF is index 2.
    std::size_t ours_rank = 0, paper_rank = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i == 2) continue;
      if (values[i].first < values[2].first) ++ours_rank;
      if (values[i].second < values[2].second) ++paper_rank;
    }
    // "best non-oracle" = only the oracle (index 0) beats it.
    if (paper_rank <= 1) ++stf_best_paper;
    if (ours_rank <= 1) ++stf_best_ours;
  }

  std::cout << "\n";
  if (markdown) std::cout << "### Qualitative agreement summary\n\n";
  std::cout << (markdown ? "- " : "") << "wait-prediction cells compared: " << wait_cells
            << "; error-vs-mean-wait side agreement: " << wait_direction_agree << "/"
            << wait_cells << "\n";
  std::cout << (markdown ? "- " : "")
            << "scheduling cells compared: " << sched_cells
            << "; LWF<=Backfill mean-wait ordering holds in " << lwf_vs_bf_agree << "/"
            << lwf_vs_bf_total << " (paper: all)\n";
  std::cout << (markdown ? "- " : "")
            << "(workload,policy) cells where STF is best non-oracle wait predictor: paper "
            << stf_best_paper << "/" << cells << ", ours " << stf_best_ours << "/" << cells
            << "\n";
  return 0;
}
