// Extension: coverage of the wait-time uncertainty band.  For every
// submission, predict [optimistic, pessimistic] wait via scaled shadow
// replays and measure how often the actual wait falls inside the band —
// the calibration question a user of the §3 estimator would ask next.
#include "bench_common.hpp"

#include "predict/simple.hpp"
#include "predict/stf.hpp"
#include "waitpred/waitpred.hpp"

namespace {

class BandObserver final : public rtp::SimObserver {
 public:
  BandObserver(const rtp::SchedulerPolicy& policy, rtp::RuntimeEstimator& predictor,
               double lo, double hi)
      : policy_(policy), predictor_(predictor), lo_(lo), hi_(hi) {}

  void on_submit(rtp::Seconds now, const rtp::SystemState& state,
                 const rtp::Job& job) override {
    rtp::SystemState shadow = state;
    for (rtp::SchedJob& sj : shadow.mutable_queue())
      sj.estimate = predictor_.estimate(*sj.job, 0.0);
    for (rtp::SchedJob& sj : shadow.mutable_running())
      sj.estimate = predictor_.estimate(*sj.job, sj.age(now));
    bands_.emplace(job.id,
                   rtp::predict_wait_interval(shadow, policy_, now, job.id, lo_, hi_));
  }

  void on_start(const rtp::Job& job, rtp::Seconds start) override {
    auto it = bands_.find(job.id);
    if (it == bands_.end()) return;
    const rtp::Seconds wait = start - job.submit;
    ++total_;
    // Half a minute of slack absorbs the replay's 1-second completion floor
    // on near-zero waits.
    const rtp::Seconds slack = 30.0;
    if (wait + slack >= it->second.optimistic && wait - slack <= it->second.pessimistic)
      ++covered_;
    width_total_ += it->second.pessimistic - it->second.optimistic;
    bands_.erase(it);
  }

  void on_finish(const rtp::Job& job, rtp::Seconds end) override {
    predictor_.job_completed(job, end);
  }

  double coverage() const { return total_ == 0 ? 0.0 : 100.0 * covered_ / total_; }
  double mean_width_minutes() const {
    return total_ == 0 ? 0.0 : rtp::to_minutes(width_total_ / total_);
  }

 private:
  const rtp::SchedulerPolicy& policy_;
  rtp::RuntimeEstimator& predictor_;
  double lo_, hi_;
  std::unordered_map<rtp::JobId, rtp::WaitInterval> bands_;
  double covered_ = 0, total_ = 0;
  rtp::Seconds width_total_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv, /*default_scale=*/0.5);
  if (!options) return 0;

  rtp::TablePrinter table({"Workload", "Algorithm", "Band", "Coverage (%)",
                           "Mean width (min)"});
  for (const rtp::Workload& w : rtp::paper_workloads(options->scale)) {
    const bool has_max = rtp::compute_stats(w).max_runtime_coverage > 0.0;
    for (rtp::PolicyKind kind :
         {rtp::PolicyKind::Lwf, rtp::PolicyKind::BackfillConservative}) {
      for (auto [lo, hi] : {std::pair{0.5, 2.0}, std::pair{0.25, 4.0}}) {
        auto policy = rtp::make_policy(kind);
        rtp::MaxRuntimePredictor live(w);
        rtp::StfPredictor stf(rtp::default_template_set(w.fields(), has_max));
        BandObserver observer(*policy, stf, lo, hi);
        rtp::simulate(w, *policy, live, &observer);
        table.add_row({w.name(), policy->name(),
                       "x" + rtp::format_double(lo, 2) + "…x" + rtp::format_double(hi, 0),
                       rtp::format_double(observer.coverage(), 1),
                       rtp::format_double(observer.mean_width_minutes(), 1)});
      }
    }
  }
  if (options->csv)
    table.print_csv(std::cout);
  else {
    std::cout << "Extension: wait-time uncertainty band coverage (STF predictor)\n";
    table.print(std::cout);
  }
  return 0;
}
