// Table 5: wait-time prediction performance using maximum run times.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv);
  if (!options) return 0;
  const auto workloads = rtp::paper_workloads(options->scale);
  const auto rows = rtp::wait_prediction_table(
      workloads, rtp::wait_prediction_policies(/*include_fcfs=*/true),
      rtp::PredictorKind::MaxRuntime, options->stf, options->threads);
  rtp::bench::print_wait_rows("Table 5: wait-time prediction, maximum run times", rows,
                              options->csv);
  return 0;
}
