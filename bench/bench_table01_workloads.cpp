// Table 1: characteristics of the (synthetic stand-ins for the) trace data,
// plus Table 2: which characteristics each trace records.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv);
  if (!options) return 0;
  const auto workloads = rtp::paper_workloads(options->scale);

  rtp::TablePrinter t1({"Workload Name", "Number of Nodes", "Number of Requests",
                        "Mean Run Time (minutes)", "Offered Load (percent)"});
  for (const rtp::Workload& w : workloads) {
    const rtp::WorkloadStats stats = rtp::compute_stats(w);
    t1.add_row({w.name(), std::to_string(w.machine_nodes()), std::to_string(w.size()),
                rtp::format_double(stats.mean_runtime_minutes, 2),
                rtp::format_double(100.0 * stats.offered_load, 2)});
  }
  if (options->csv) {
    t1.print_csv(std::cout);
    return 0;
  }
  std::cout << "Table 1: characteristics of the synthetic trace stand-ins\n";
  t1.print(std::cout);

  std::cout << "\nTable 2: characteristics recorded per workload\n";
  rtp::TablePrinter t2({"Abbr", "Characteristic", "ANL", "CTC", "SDSC95", "SDSC96"});
  for (rtp::Characteristic c : rtp::all_characteristics()) {
    std::vector<std::string> row{std::string(rtp::characteristic_abbr(c)),
                                 std::string(rtp::characteristic_name(c))};
    for (const rtp::Workload& w : workloads)
      row.push_back(w.fields().has(c) ? "Y" : "");
    t2.add_row(std::move(row));
  }
  t2.print(std::cout);
  return 0;
}
