// Table 15: scheduling performance using Downey's conditional-median
// run-time predictor.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv);
  if (!options) return 0;
  const auto workloads = rtp::paper_workloads(options->scale);
  const auto rows = rtp::scheduling_table(workloads, rtp::scheduling_policies(),
                                          rtp::PredictorKind::DowneyMedian, options->stf, options->threads);
  rtp::bench::print_sched_rows(
      "Table 15: scheduling performance, Downey conditional median", rows, options->csv);
  return 0;
}
