// Table 6: wait-time prediction performance using our (STF) run-time
// predictor.  Pass --ga to run the paper's genetic-algorithm template
// search per workload/policy pair; the default uses the hand-built set.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv);
  if (!options) return 0;
  const auto workloads = rtp::paper_workloads(options->scale);
  const auto rows = rtp::wait_prediction_table(
      workloads, rtp::wait_prediction_policies(/*include_fcfs=*/true),
      rtp::PredictorKind::Stf, options->stf, options->threads);
  rtp::bench::print_wait_rows("Table 6: wait-time prediction, our run-time predictor", rows,
                              options->csv);
  return 0;
}
