// Online service throughput: replay recorded scheduler sessions through
// OnlineSession and measure the estimate path across the shadow × cache
// matrix.
//
// For each site, the batch scheduler (live on user maxima, as in the
// paper's wait-time setup) is recorded once into an event stream; the
// stream is then replayed open-loop through four fresh sessions — the
// legacy recompute-per-query shadow and the incremental shadow schedule,
// each with the estimate cache disabled and enabled — issuing 1 +
// --repeats ESTIMATE queries per submission.  Reported per run:
// queries/sec and the p50/p95/p99/max per-query latency from the
// log-bucketed histogram.  All four runs must return bit-identical
// answers; the binary exits non-zero if they diverge or an enabled cache
// never hits.
//
// Results also persist as JSON (--json, default BENCH_service.json) so the
// perf trajectory accumulates across checkouts: one record per (site,
// shadow, cache) run with QPS and the latency quantiles.
//
//   ./bench_service_throughput [--scale 0.02] [--repeats 3] [--policy backfill]
//                              [--predictor max] [--compression 0] [--csv]
//                              [--json BENCH_service.json]
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/args.hpp"
#include "core/error.hpp"
#include "core/strings.hpp"
#include "core/table.hpp"
#include "predict/factory.hpp"
#include "predict/simple.hpp"
#include "sched/policy.hpp"
#include "service/replay.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  try {
    rtp::ArgParser args(argc, argv);
    args.add_option("scale", "fraction of each trace's job count", "0.02");
    args.add_option("repeats", "extra ESTIMATE queries per submission", "3");
    args.add_option("policy", "fcfs|lwf|backfill|easy", "backfill");
    args.add_option("predictor", "actual|max|stf|gibbons|downey-avg|downey-med", "max");
    args.add_option("compression", "simulated seconds per wall second (0 = unpaced)", "0");
    args.add_flag("csv", "emit CSV");
    args.add_option("json", "persist results to this JSON file ('' = skip)",
                    "BENCH_service.json");
    if (!args.parse()) return 0;

    const auto policy = rtp::make_policy(rtp::policy_kind_from_string(args.str("policy")));
    const auto predictor_kind = rtp::predictor_kind_from_string(args.str("predictor"));
    rtp::ReplayOptions replay_options;
    replay_options.time_compression = args.real("compression");
    replay_options.extra_queries = static_cast<int>(args.integer("repeats"));

    rtp::TablePrinter table({"Workload", "Shadow", "Cache", "Events", "Queries",
                             "Queries/s", "p50 (us)", "p95 (us)", "p99 (us)", "max (us)",
                             "Hit Rate"});
    std::ostringstream json_runs;
    bool first_run = true;
    bool ok = true;
    for (const rtp::Workload& w : rtp::paper_workloads(args.real("scale"))) {
      rtp::MaxRuntimePredictor live(w);
      const rtp::RecordedRun recorded = rtp::record_session_log(w, *policy, live);

      rtp::RunningStats answers[4];
      int run = 0;
      for (const bool incremental : {false, true}) {
        for (const bool cached : {false, true}) {
          auto predictor = rtp::make_runtime_estimator(predictor_kind, w);
          rtp::SessionOptions session_options;
          session_options.name = w.name();
          session_options.cache_estimates = cached;
          session_options.incremental_shadow = incremental;
          rtp::OnlineSession session(w.machine_nodes(), *policy, *predictor,
                                     session_options);
          const rtp::ReplayReport report =
              rtp::replay_through_session(session, recorded.events, replay_options);
          answers[run++] = report.answers;

          const std::uint64_t lookups = report.cache_hits + report.cache_misses;
          const double hit_rate =
              lookups > 0 ? static_cast<double>(report.cache_hits) /
                                static_cast<double>(lookups)
                          : 0.0;
          const char* shadow = incremental ? "incr" : "legacy";
          table.add_row({w.name(), shadow, cached ? "on" : "off",
                         std::to_string(report.events), std::to_string(report.queries),
                         rtp::format_double(report.queries_per_sec, 0),
                         rtp::format_double(report.latency_us.p50(), 1),
                         rtp::format_double(report.latency_us.p95(), 1),
                         rtp::format_double(report.latency_us.p99(), 1),
                         rtp::format_double(report.latency_us.max(), 1),
                         rtp::format_double(hit_rate, 3)});
          if (cached && report.cache_hits == 0) {
            std::cerr << w.name() << ": cache enabled but never hit\n";
            ok = false;
          }

          if (!first_run) json_runs << ",";
          first_run = false;
          json_runs << "\n    {\"site\": \"" << w.name() << "\", \"shadow\": \""
                    << (incremental ? "incremental" : "legacy") << "\", \"cache\": \""
                    << (cached ? "on" : "off") << "\", \"events\": " << report.events
                    << ", \"queries\": " << report.queries << ", \"qps\": "
                    << rtp::format_double(report.queries_per_sec, 1)
                    << ", \"p50_us\": " << rtp::format_double(report.latency_us.p50(), 3)
                    << ", \"p95_us\": " << rtp::format_double(report.latency_us.p95(), 3)
                    << ", \"p99_us\": " << rtp::format_double(report.latency_us.p99(), 3)
                    << ", \"max_us\": " << rtp::format_double(report.latency_us.max(), 3)
                    << ", \"hit_rate\": " << rtp::format_double(hit_rate, 3) << "}";
        }
      }
      // Neither the cache nor the incremental shadow may be visible in the
      // answers: all four runs' stats must match bit-for-bit.
      for (int i = 1; i < 4; ++i) {
        if (answers[0].count() != answers[i].count() ||
            answers[0].sum() != answers[i].sum() ||
            answers[0].min() != answers[i].min() ||
            answers[0].max() != answers[i].max()) {
          std::cerr << w.name() << ": shadow/cache run " << i
                    << " answers diverge from the legacy cache-off reference\n";
          ok = false;
        }
      }
    }

    if (args.flag("csv")) {
      table.print_csv(std::cout);
    } else {
      std::cout << "Online wait-time service throughput (1 + repeats queries per submit)\n";
      table.print(std::cout);
    }
    std::cout << (ok ? "equivalence check: answers identical across shadow and cache modes\n"
                     : "equivalence check: FAILED\n");

    const std::string json_path = args.str("json");
    if (!json_path.empty()) {
      std::ofstream json(json_path, std::ios::trunc);
      json << "{\n  \"bench\": \"service_throughput\",\n  \"policy\": \""
           << args.str("policy") << "\",\n  \"predictor\": \"" << args.str("predictor")
           << "\",\n  \"scale\": " << rtp::format_double(args.real("scale"), 4)
           << ",\n  \"repeats\": " << args.integer("repeats") << ",\n  \"runs\": ["
           << json_runs.str() << "\n  ]\n}\n";
      RTP_CHECK(json.good(), "cannot write " + json_path);
      std::cerr << "bench_service_throughput: results persisted to " << json_path
                << "\n";
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_service_throughput: " << e.what() << "\n";
    return 1;
  }
}
