// Table 8: wait-time prediction using Downey's conditional-average
// run-time predictor.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv);
  if (!options) return 0;
  const auto workloads = rtp::paper_workloads(options->scale);
  const auto rows = rtp::wait_prediction_table(
      workloads, rtp::wait_prediction_policies(/*include_fcfs=*/true),
      rtp::PredictorKind::DowneyAverage, options->stf, options->threads);
  rtp::bench::print_wait_rows("Table 8: wait-time prediction, Downey conditional average",
                              rows, options->csv);
  return 0;
}
