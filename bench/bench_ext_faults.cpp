// Extension beyond the paper (whose traces are clean): scheduler behavior
// under injected faults.  Sweeps the four synthetic workloads x {FCFS, LWF,
// conservative backfill} x failure scenarios of increasing severity, with
// both the paper's max-runtime predictor and the STF predictor wrapped in
// the graceful-degradation fallback chain.  The fault sequence is
// counter-based and pre-generated, so within a scenario every (policy,
// predictor) pair sees the identical hazard and outage timeline — the
// numbers are directly comparable, and the whole sweep is deterministic
// under the fixed seed.
#include "bench_common.hpp"

#include <algorithm>
#include <iterator>

#include "predict/factory.hpp"
#include "predict/fallback.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"

namespace {

struct Scenario {
  const char* label;
  double job_failure_rate;
  double outages_per_day;
};

rtp::FaultModel make_model(const Scenario& s, const rtp::Workload& w) {
  rtp::FaultConfig config;
  config.seed = 20260806;
  config.job_failure_rate = s.job_failure_rate;
  config.outages_per_day = s.outages_per_day;
  config.outage_duration_mean = rtp::hours(2);
  config.burst_probability = 0.2;
  config.burst_nodes = std::max(2, w.machine_nodes() / 16);
  config.retry.max_attempts = 4;
  return rtp::FaultModel(config, w);
}

}  // namespace

struct Cell {
  const rtp::Workload* workload = nullptr;
  const rtp::FaultModel* model = nullptr;
  const Scenario* scenario = nullptr;
  rtp::PolicyKind policy = rtp::PolicyKind::Fcfs;
  rtp::PredictorKind predictor = rtp::PredictorKind::MaxRuntime;
};

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv, /*default_scale=*/0.2);
  if (!options) return 0;

  const Scenario scenarios[] = {
      {"clean", 0.0, 0.0},
      {"5%+outages", 0.05, 0.5},
      {"15%+outages", 0.15, 2.0},
  };
  const rtp::PredictorKind predictors[] = {rtp::PredictorKind::MaxRuntime,
                                           rtp::PredictorKind::Stf};
  const rtp::PolicyKind policies[] = {rtp::PolicyKind::Fcfs, rtp::PolicyKind::Lwf,
                                      rtp::PolicyKind::BackfillConservative};

  // Materialize workloads and fault models up front so cells share them
  // read-only; each cell owns its policy and estimator.  The reserve must
  // cover every model: cells keep pointers into `models`.
  const auto workloads = rtp::paper_workloads(options->scale);
  std::vector<rtp::FaultModel> models;
  models.reserve(workloads.size() * std::size(scenarios));
  std::vector<Cell> cells;
  for (const rtp::Workload& w : workloads) {
    for (const Scenario& s : scenarios) {
      models.push_back(make_model(s, w));
      for (rtp::PolicyKind pkind : policies)
        for (rtp::PredictorKind ekind : predictors)
          cells.push_back({&w, &models.back(), &s, pkind, ekind});
    }
  }

  const rtp::ExperimentRunner runner(options->threads);
  const auto rows = runner.map<std::vector<std::string>>(cells.size(), [&](std::size_t i) {
    const Cell& cell = cells[i];
    auto policy = rtp::make_policy(cell.policy);
    // Fresh estimator per run: history predictors learn online, and the
    // STF chain degrades gracefully while its categories fill.
    auto estimator = rtp::make_fallback_estimator(cell.predictor, *cell.workload);
    rtp::SimOptions sim_options;
    if (cell.model->enabled()) sim_options.faults = cell.model;
    const rtp::SimResult r =
        rtp::simulate(*cell.workload, *policy, *estimator, nullptr, sim_options);
    return std::vector<std::string>{
        cell.workload->name(), policy->name(), rtp::to_string(cell.predictor),
        cell.scenario->label, rtp::format_double(100.0 * r.utilization, 2),
        rtp::format_double(100.0 * r.goodput, 2),
        rtp::format_double(rtp::to_minutes(r.mean_wait), 2), std::to_string(r.retries),
        std::to_string(r.abandoned), rtp::format_double(r.wasted_work / rtp::hours(1), 1)};
  });

  rtp::TablePrinter table({"Workload", "Scheduling Algorithm", "Predictor", "Faults",
                           "Util (%)", "Goodput (%)", "Mean Wait (min)", "Retries",
                           "Abandoned", "Wasted (node-h)"});
  for (const auto& row : rows) table.add_row(row);
  if (options->csv)
    table.print_csv(std::cout);
  else {
    std::cout << "Extension: scheduling under failure injection "
                 "(fixed fault seed, identical fault sequence per scenario)\n";
    table.print(std::cout);
  }
  return 0;
}
