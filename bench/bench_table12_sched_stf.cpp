// Table 12: scheduling performance using our (STF) run-time prediction
// technique.  --ga runs the template search per workload/policy pair.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv);
  if (!options) return 0;
  const auto workloads = rtp::paper_workloads(options->scale);
  const auto rows = rtp::scheduling_table(workloads, rtp::scheduling_policies(),
                                          rtp::PredictorKind::Stf, options->stf, options->threads);
  rtp::bench::print_sched_rows("Table 12: scheduling performance, our run-time predictor",
                               rows, options->csv);
  return 0;
}
