// Table 11: scheduling performance using maximum run times (the EASY
// convention).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv);
  if (!options) return 0;
  const auto workloads = rtp::paper_workloads(options->scale);
  const auto rows = rtp::scheduling_table(workloads, rtp::scheduling_policies(),
                                          rtp::PredictorKind::MaxRuntime, options->stf, options->threads);
  rtp::bench::print_sched_rows("Table 11: scheduling performance, maximum run times", rows,
                               options->csv);
  return 0;
}
