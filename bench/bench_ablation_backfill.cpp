// Ablation: conservative backfill (the paper's algorithm reserves nodes for
// *every* queued job) versus EASY backfill (reservation only for the first
// blocked job, per the paper's citation [11]) — under three predictors.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv, /*default_scale=*/0.5);
  if (!options) return 0;
  const auto workloads = rtp::paper_workloads(options->scale);
  const std::vector<rtp::PolicyKind> policies{rtp::PolicyKind::BackfillConservative,
                                              rtp::PolicyKind::BackfillEasy};
  for (rtp::PredictorKind predictor :
       {rtp::PredictorKind::Actual, rtp::PredictorKind::MaxRuntime, rtp::PredictorKind::Stf}) {
    const auto rows = rtp::scheduling_table(workloads, policies, predictor, options->stf);
    rtp::bench::print_sched_rows(
        "Ablation: conservative vs EASY backfill — predictor = " + rtp::to_string(predictor),
        rows, options->csv);
    std::cout << "\n";
  }
  return 0;
}
