// Section 4's load-compression experiment: the SDSC interarrival times are
// compressed by a factor of two and the predictors compared again — the
// paper's test of the hypothesis that prediction accuracy matters more when
// scheduling becomes "hard" (higher offered load).
#include "bench_common.hpp"

#include "workload/transforms.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv, /*default_scale=*/0.5);
  if (!options) return 0;

  std::vector<rtp::Workload> workloads;
  workloads.push_back(rtp::compress_interarrival(
      rtp::generate_synthetic(rtp::sdsc95_config(options->scale)), 2.0));
  workloads.push_back(rtp::compress_interarrival(
      rtp::generate_synthetic(rtp::sdsc96_config(options->scale)), 2.0));

  static constexpr rtp::PredictorKind kPredictors[] = {
      rtp::PredictorKind::Actual,        rtp::PredictorKind::MaxRuntime,
      rtp::PredictorKind::Stf,           rtp::PredictorKind::Gibbons,
      rtp::PredictorKind::DowneyAverage, rtp::PredictorKind::DowneyMedian,
  };
  for (rtp::PredictorKind predictor : kPredictors) {
    const auto rows = rtp::scheduling_table(workloads, rtp::scheduling_policies(), predictor,
                                            options->stf, options->threads);
    rtp::bench::print_sched_rows(
        "Section 4 (2x compressed SDSC load): predictor = " + rtp::to_string(predictor), rows,
        options->csv);
    std::cout << "\n";
  }
  return 0;
}
