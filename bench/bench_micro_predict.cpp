// Micro-benchmarks (google-benchmark) for the prediction hot paths: the
// per-event costs that dominate full-trace simulations.
#include <benchmark/benchmark.h>

#include "predict/downey.hpp"
#include "predict/gibbons.hpp"
#include "predict/stf.hpp"
#include "workload/synthetic.hpp"

namespace {

const rtp::Workload& anl() {
  static const rtp::Workload w = rtp::generate_synthetic(rtp::anl_config(0.25));
  return w;
}

template <typename Predictor>
void feed_history(Predictor& p, std::size_t count) {
  const auto& jobs = anl().jobs();
  for (std::size_t i = 0; i < count && i < jobs.size(); ++i)
    p.job_completed(jobs[i], jobs[i].submit + jobs[i].runtime);
}

void BM_StfPredict(benchmark::State& state) {
  rtp::StfPredictor p(rtp::default_template_set(anl().fields(), true));
  feed_history(p, static_cast<std::size_t>(state.range(0)));
  const auto& jobs = anl().jobs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.estimate(jobs[i % jobs.size()], 0.0));
    ++i;
  }
}
BENCHMARK(BM_StfPredict)->Arg(100)->Arg(1000);

void BM_StfPredictRunning(benchmark::State& state) {
  // Running-job predictions exercise the age-conditioned scan path.
  rtp::StfPredictor p(rtp::default_template_set(anl().fields(), true));
  feed_history(p, 1000);
  const auto& jobs = anl().jobs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.estimate(jobs[i % jobs.size()], rtp::minutes(30)));
    ++i;
  }
}
BENCHMARK(BM_StfPredictRunning);

void BM_StfInsert(benchmark::State& state) {
  const auto& jobs = anl().jobs();
  rtp::StfPredictor p(rtp::default_template_set(anl().fields(), true));
  std::size_t i = 0;
  for (auto _ : state) {
    p.job_completed(jobs[i % jobs.size()], 0.0);
    ++i;
  }
}
BENCHMARK(BM_StfInsert);

void BM_GibbonsPredict(benchmark::State& state) {
  rtp::GibbonsPredictor p;
  feed_history(p, 1000);
  const auto& jobs = anl().jobs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.estimate(jobs[i % jobs.size()], 0.0));
    ++i;
  }
}
BENCHMARK(BM_GibbonsPredict);

void BM_DowneyPredict(benchmark::State& state) {
  rtp::DowneyPredictor p(rtp::DowneyVariant::ConditionalMedian);
  feed_history(p, 1000);
  const auto& jobs = anl().jobs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.estimate(jobs[i % jobs.size()], 0.0));
    ++i;
  }
}
BENCHMARK(BM_DowneyPredict);

void BM_DowneyInsertWithRefit(benchmark::State& state) {
  const auto& jobs = anl().jobs();
  rtp::DowneyPredictor p(rtp::DowneyVariant::ConditionalAverage);
  std::size_t i = 0;
  for (auto _ : state) {
    p.job_completed(jobs[i % jobs.size()], 0.0);
    // Trigger the lazy refit path periodically, as a live sim would.
    if (i % 64 == 0) benchmark::DoNotOptimize(p.estimate(jobs[i % jobs.size()], 0.0));
    ++i;
  }
}
BENCHMARK(BM_DowneyInsertWithRefit);

}  // namespace

BENCHMARK_MAIN();
