// Micro-benchmarks for the scheduling hot paths: availability-profile
// queries, policy passes over realistic queue depths, shadow simulation,
// and a full end-to-end trace simulation.
#include <benchmark/benchmark.h>

#include "predict/simple.hpp"
#include "sched/forward_sim.hpp"
#include "sched/profile.hpp"
#include "sim/simulator.hpp"
#include "workload/synthetic.hpp"

namespace {

const rtp::Workload& anl() {
  static const rtp::Workload w = rtp::generate_synthetic(rtp::anl_config(0.25));
  return w;
}

void BM_ProfileReserveAndFit(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rtp::AvailabilityProfile profile(0.0, 400);
    for (int i = 0; i < jobs; ++i) {
      const int nodes = 1 + (i * 37) % 64;
      const double duration = 100.0 + (i * 131) % 5000;
      const double t = profile.earliest_fit(0.0, nodes, duration);
      profile.reserve(t, t + duration, nodes);
    }
    benchmark::DoNotOptimize(profile.breakpoints());
  }
}
BENCHMARK(BM_ProfileReserveAndFit)->Arg(16)->Arg(64)->Arg(256);

/// Build a deep-queue state for policy benchmarks.
struct DeepQueue {
  std::vector<rtp::Job> jobs;
  rtp::SystemState state{400};

  explicit DeepQueue(int running, int queued) {
    jobs.reserve(static_cast<std::size_t>(running + queued));
    for (int i = 0; i < running; ++i) {
      rtp::Job& j = jobs.emplace_back();
      j.id = static_cast<rtp::JobId>(jobs.size() - 1);
      j.nodes = 1 + (i * 13) % 32;
      state.enqueue(j, 0.0, 1000.0 + i);
      state.start_job(j.id, 0.0);
    }
    for (int i = 0; i < queued; ++i) {
      rtp::Job& j = jobs.emplace_back();
      j.id = static_cast<rtp::JobId>(jobs.size() - 1);
      j.nodes = 1 + (i * 29) % 128;
      state.enqueue(j, 1.0 + i, 500.0 + 100.0 * (i % 11));
    }
  }
};

void BM_BackfillPass(benchmark::State& state) {
  DeepQueue fixture(8, static_cast<int>(state.range(0)));
  rtp::BackfillPolicy policy(rtp::BackfillPolicy::Variant::Conservative);
  for (auto _ : state)
    benchmark::DoNotOptimize(policy.select_starts(100.0, fixture.state));
}
BENCHMARK(BM_BackfillPass)->Arg(8)->Arg(32)->Arg(128);

void BM_LwfPass(benchmark::State& state) {
  DeepQueue fixture(8, static_cast<int>(state.range(0)));
  rtp::LwfPolicy policy;
  for (auto _ : state)
    benchmark::DoNotOptimize(policy.select_starts(100.0, fixture.state));
}
BENCHMARK(BM_LwfPass)->Arg(8)->Arg(128);

void BM_ForwardSimulate(benchmark::State& state) {
  DeepQueue fixture(8, static_cast<int>(state.range(0)));
  rtp::BackfillPolicy policy(rtp::BackfillPolicy::Variant::Conservative);
  for (auto _ : state)
    benchmark::DoNotOptimize(rtp::forward_simulate(fixture.state, policy, 100.0));
}
BENCHMARK(BM_ForwardSimulate)->Arg(8)->Arg(64);

void BM_FullSimulation(benchmark::State& state) {
  const rtp::Workload& w = anl();
  for (auto _ : state) {
    rtp::ActualRuntimePredictor oracle;
    rtp::BackfillPolicy policy(rtp::BackfillPolicy::Variant::Conservative);
    benchmark::DoNotOptimize(rtp::simulate(w, policy, oracle));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.size()));
}
BENCHMARK(BM_FullSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
