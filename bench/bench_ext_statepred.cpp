// Extension (paper §5 future work): state-based wait-time prediction
// compared head-to-head against the paper's shadow-simulation method.  The
// paper hoped the state-based approach would "improve wait-time prediction
// error, particularly for the LWF algorithm, which has a large built-in
// error" — this bench measures exactly that, per workload and policy, with
// both methods driven by the STF run-time predictor.
#include "bench_common.hpp"

#include "predict/simple.hpp"
#include "predict/stf.hpp"
#include "waitpred/statepred.hpp"
#include "waitpred/waitpred.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv, /*default_scale=*/0.5);
  if (!options) return 0;

  rtp::TablePrinter table({"Workload", "Scheduling Algorithm", "Shadow-sim error (min)",
                           "State-based error (min)", "Mean wait (min)"});
  for (const rtp::Workload& w : rtp::paper_workloads(options->scale)) {
    const bool has_max = rtp::compute_stats(w).max_runtime_coverage > 0.0;
    for (rtp::PolicyKind kind :
         {rtp::PolicyKind::Lwf, rtp::PolicyKind::BackfillConservative}) {
      auto policy = rtp::make_policy(kind);
      rtp::MaxRuntimePredictor live(w);  // live scheduler per the paper

      rtp::StfPredictor shadow_stf(rtp::default_template_set(w.fields(), has_max));
      rtp::WaitTimeObserver shadow(*policy, shadow_stf);
      rtp::StfPredictor state_stf(rtp::default_template_set(w.fields(), has_max));
      rtp::StateWaitObserver statebased(state_stf);

      // One simulation, both observers.
      struct Both final : rtp::SimObserver {
        rtp::SimObserver* a;
        rtp::SimObserver* b;
        void on_submit(rtp::Seconds now, const rtp::SystemState& st,
                       const rtp::Job& j) override {
          a->on_submit(now, st, j);
          b->on_submit(now, st, j);
        }
        void on_start(const rtp::Job& j, rtp::Seconds t) override {
          a->on_start(j, t);
          b->on_start(j, t);
        }
        void on_finish(const rtp::Job& j, rtp::Seconds t) override {
          a->on_finish(j, t);
          b->on_finish(j, t);
        }
      } both;
      both.a = &shadow;
      both.b = &statebased;
      rtp::simulate(w, *policy, live, &both);

      table.add_row({w.name(), policy->name(),
                     rtp::format_double(rtp::to_minutes(shadow.error_stats().mean()), 2),
                     rtp::format_double(rtp::to_minutes(statebased.error_stats().mean()), 2),
                     rtp::format_double(rtp::to_minutes(shadow.wait_stats().mean()), 2)});
    }
  }
  if (options->csv)
    table.print_csv(std::cout);
  else {
    std::cout << "Extension: shadow-simulation vs state-based wait-time prediction\n";
    table.print(std::cout);
  }
  return 0;
}
