// Table 13: scheduling performance using Gibbons's run-time predictor.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv);
  if (!options) return 0;
  const auto workloads = rtp::paper_workloads(options->scale);
  const auto rows = rtp::scheduling_table(workloads, rtp::scheduling_policies(),
                                          rtp::PredictorKind::Gibbons, options->stf, options->threads);
  rtp::bench::print_sched_rows("Table 13: scheduling performance, Gibbons's predictor", rows,
                               options->csv);
  return 0;
}
