// Table 7: wait-time prediction performance using Gibbons's predictor.
// Also prints Table 3 (Gibbons's fixed template hierarchy) for reference.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  auto options = rtp::bench::parse(argc, argv);
  if (!options) return 0;

  if (!options->csv) {
    rtp::TablePrinter t3({"Number", "Template", "Predictor"});
    t3.add_row({"1", "(u,e,n,rtime)", "mean"});
    t3.add_row({"2", "(u,e)", "linear regression"});
    t3.add_row({"3", "(e,n,rtime)", "mean"});
    t3.add_row({"4", "(e)", "linear regression"});
    t3.add_row({"5", "(n,rtime)", "mean"});
    t3.add_row({"6", "()", "linear regression"});
    std::cout << "Table 3: templates used by Gibbons\n";
    t3.print(std::cout);
    std::cout << "\n";
  }

  const auto workloads = rtp::paper_workloads(options->scale);
  const auto rows = rtp::wait_prediction_table(
      workloads, rtp::wait_prediction_policies(/*include_fcfs=*/true),
      rtp::PredictorKind::Gibbons, options->stf, options->threads);
  rtp::bench::print_wait_rows("Table 7: wait-time prediction, Gibbons's predictor", rows,
                              options->csv);
  return 0;
}
